package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
)

// Config mirrors the subset of cmd/go's internal vetConfig that fedlint
// needs. The go command writes this JSON to <objdir>/vet.cfg and invokes the
// vettool with that path as its sole positional argument, once per package
// in the build graph (dependencies get VetxOnly=true).
type Config struct {
	ID                        string            // package ID, e.g. "p [p.test]"
	Compiler                  string            // "gc" or "gccgo"
	Dir                       string            // package directory
	ImportPath                string            // canonical import path
	GoFiles                   []string          // absolute paths of Go sources
	NonGoFiles                []string          // absolute paths of non-Go sources
	IgnoredFiles              []string          // sources excluded by build constraints
	ImportMap                 map[string]string // source import path -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	Standard                  map[string]bool   // canonical path -> in std library
	PackageVetx               map[string]string // canonical path -> vetx file of dep
	VetxOnly                  bool              // only facts wanted; we emit none, so no-op
	VetxOutput                string            // where to write the (empty) facts file
	GoVersion                 string            // language version, e.g. "go1.22"
	SucceedOnTypecheckFailure bool              // exit 0 quietly if the package doesn't type-check
}

// Main is the entry point of a fedlint-style vettool. It implements the
// three invocation modes of the go command's vettool contract:
//
//   - `fedlint -V=full` prints a version line ending in a content-derived
//     buildID (cmd/go hashes it into its action cache key);
//   - `fedlint -flags` prints the tool's flag schema as JSON so go vet
//     knows which command-line flags to forward;
//   - `fedlint <dir>/vet.cfg` analyzes one package described by the config.
//
// For convenience, any other argument list (e.g. `fedlint ./...`) re-execs
// `go vet -vettool=<self>` with the same flags, so the binary doubles as a
// standalone checker.
func Main(analyzers ...*Analyzer) {
	fs := flag.NewFlagSet("fedlint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (-V=full for a build ID)")
	flagsFlag := fs.Bool("flags", false, "print flag schema as JSON and exit")
	fixFlag := fs.Bool("fix", false, "apply suggested fixes in place where available")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only analyzers enabled this way: "+firstSentence(a.Doc))
	}
	fs.Parse(os.Args[1:])

	switch {
	case *versionFlag != "":
		printVersion(*versionFlag)
		return
	case *flagsFlag:
		printFlagSchema(analyzers)
		return
	}

	// x/tools semantics: naming any analyzer flag restricts the run to the
	// named subset; naming none runs everything.
	selected := analyzers
	if anySet(enabled) {
		selected = nil
		for _, a := range analyzers {
			if *enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}

	args := fs.Args()
	if len(args) == 1 && len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg" {
		os.Exit(runPackage(args[0], selected, *fixFlag))
	}
	os.Exit(execGoVet(fs, args))
}

// firstSentence trims an analyzer Doc to its first sentence for flag usage.
func firstSentence(doc string) string {
	for i := 0; i < len(doc); i++ {
		if doc[i] == '\n' || (doc[i] == '.' && (i+1 == len(doc) || doc[i+1] == ' ')) {
			return doc[:i+1]
		}
	}
	return doc
}

func anySet(m map[string]*bool) bool {
	for _, v := range m {
		if *v {
			return true
		}
	}
	return false
}

// printVersion implements -V. cmd/go requires the -V=full output to look
// like "<name> version devel ... buildID=<id>" and uses the whole line as
// the tool's cache key, so the ID must change whenever the binary does:
// hash the executable itself.
func printVersion(mode string) {
	if mode != "full" {
		fmt.Fprintln(os.Stdout, "fedlint version devel")
		return
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	// Protocol output, not logging: cmd/go reads this line from stdout.
	fmt.Fprintf(os.Stdout, "fedlint version devel buildID=%s\n", id)
}

// printFlagSchema implements -flags: go vet forwards only command-line
// flags the tool declares here.
func printFlagSchema(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	schema := []jsonFlag{{Name: "fix", Bool: true, Usage: "apply suggested fixes"}}
	for _, a := range analyzers {
		schema = append(schema, jsonFlag{Name: a.Name, Bool: true, Usage: firstSentence(a.Doc)})
	}
	out, err := json.Marshal(schema)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedlint:", err)
		os.Exit(2)
	}
	os.Stdout.Write(append(out, '\n'))
}

// execGoVet re-runs the tool under `go vet -vettool=<self>` so that
// `fedlint ./...` works directly during development.
func execGoVet(fs *flag.FlagSet, patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedlint:", err)
		return 2
	}
	argv := []string{"vet", "-vettool=" + exe}
	fs.Visit(func(f *flag.Flag) {
		if f.Name != "V" && f.Name != "flags" {
			argv = append(argv, fmt.Sprintf("-%s=%s", f.Name, f.Value.String()))
		}
	})
	argv = append(argv, patterns...)
	cmd := exec.Command("go", argv...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "fedlint:", err)
		return 2
	}
	return 0
}

// runPackage analyzes the single package described by the vet config file
// and returns the process exit code: 0 clean, 1 diagnostics, 2 tool error.
func runPackage(cfgPath string, analyzers []*Analyzer, fix bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedlint:", err)
		return 2
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fedlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// fedlint produces no cross-package facts, but cmd/go caches the vetx
	// output file if present, so write an empty one up front; dependency
	// invocations (VetxOnly) then cost nothing beyond process startup.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "fedlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pass, errcode := typecheckConfig(&cfg)
	if pass == nil {
		return errcode
	}
	diags, err := runAnalyzers(pass, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedlint:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	if fix {
		return applyFixes(pass.Fset, diags)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", pass.Fset.Position(d.diag.Pos), d.diag.Message)
	}
	return 1
}

// typecheckConfig parses and type-checks the package in cfg, resolving
// imports through the export data files the go command supplies. On failure
// it prints diagnostics and returns a nil pass with the exit code to use.
func typecheckConfig(cfg *Config) (*Pass, int) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, 0
			}
			fmt.Fprintln(os.Stderr, err)
			return nil, 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var typeErrs []error
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := NewTypesInfo()
	pkg, _ := tcfg.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil, 0
		}
		for _, err := range typeErrs {
			fmt.Fprintln(os.Stderr, err)
		}
		return nil, 1
	}
	return &Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		PkgPath:   cfg.ImportPath,
	}, 0
}

// NewTypesInfo allocates a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// namedDiag pairs a diagnostic with the analyzer that produced it.
type namedDiag struct {
	analyzer string
	diag     Diagnostic
}

// runAnalyzers runs each analyzer over the pass and returns all
// diagnostics in file-position order. The diagnostic messages are suffixed
// with the analyzer name so CI output identifies the failing invariant.
func runAnalyzers(base *Pass, analyzers []*Analyzer) ([]namedDiag, error) {
	var diags []namedDiag
	for _, a := range analyzers {
		pass := *base
		pass.Analyzer = a
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Message = fmt.Sprintf("%s [fedlint/%s]", d.Message, name)
			diags = append(diags, namedDiag{analyzer: name, diag: d})
		}
		if _, err := a.Run(&pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].diag.Pos < diags[j].diag.Pos })
	return diags, nil
}

// applyFixes applies the first suggested fix of each diagnostic to the
// source files in place, last edit first so earlier offsets stay valid.
// Returns 0 when every diagnostic had a fix, 1 otherwise.
func applyFixes(fset *token.FileSet, diags []namedDiag) int {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	unfixed := 0
	for _, d := range diags {
		if len(d.diag.SuggestedFixes) == 0 {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.diag.Pos), d.diag.Message)
			unfixed++
			continue
		}
		for _, te := range d.diag.SuggestedFixes[0].TextEdits {
			start := fset.Position(te.Pos)
			end := start
			if te.End.IsValid() {
				end = fset.Position(te.End)
			}
			perFile[start.Filename] = append(perFile[start.Filename], edit{start.Offset, end.Offset, te.NewText})
		}
		fmt.Fprintf(os.Stderr, "%s: fixed: %s\n", fset.Position(d.diag.Pos), d.diag.SuggestedFixes[0].Message)
	}
	for name, edits := range perFile {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedlint:", err)
			return 2
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := len(src) + 1
		for _, e := range edits {
			if e.end > prev { // overlapping fixes: keep the first, skip the rest
				continue
			}
			src = append(src[:e.start], append(append([]byte(nil), e.text...), src[e.end:]...)...)
			prev = e.start
		}
		if err := os.WriteFile(name, src, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "fedlint:", err)
			return 2
		}
	}
	if unfixed > 0 {
		return 1
	}
	return 0
}
