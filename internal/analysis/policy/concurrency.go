package policy

// This file is the concurrency half of the policy: the manually curated
// facts the lock analyzers (lockorder, lockheld) need about calls that
// cross a package boundary, where fedlint's intra-package type information
// ends. Keys are go/types full names — "(*repro/internal/wal.WAL).Commit",
// "time.Sleep" — exactly what (*types.Func).FullName returns.

// LockFacts maps an exported callee to the lock classes it may acquire,
// so lockorder can extend the acquisition graph across package
// boundaries (e.g. transport code appending to the WAL under Server.mu
// creates the Server.mu → WAL.mu edge even though WAL.mu is private to
// internal/wal).
var LockFacts = map[string][]string{
	"(*repro/internal/wal.WAL).Append":          {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).AppendAt":        {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).Commit":          {"repro/internal/wal.WAL.flushMu", "repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).WaitFor":         {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).ReadFrom":        {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).Replay":          {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).Rotate":          {"repro/internal/wal.WAL.mu", "repro/internal/wal.WAL.flushMu"},
	"(*repro/internal/wal.WAL).TruncateThrough": {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).AlignTo":         {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).Close":           {"repro/internal/wal.WAL.mu", "repro/internal/wal.WAL.flushMu"},
	"(*repro/internal/wal.WAL).FirstSeq":        {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).LastSeq":         {"repro/internal/wal.WAL.mu"},
	"(*repro/internal/wal.WAL).SizeBytes":       {"repro/internal/wal.WAL.mu"},
}

// Blocking maps a callee to why it can block indefinitely (or for an
// operator-visible latency): network round trips, fsync, long-polls,
// sleeps, and barrier waits. lockheld reports any of these reached while
// a mutex is held, unless (lock, callee) is listed in HeldExceptions.
var Blocking = map[string]string{
	"time.Sleep":                "sleeps",
	"(*sync.WaitGroup).Wait":    "waits for a WaitGroup",
	"(*sync.Cond).Wait":         "parks on a condition variable",
	"(*os.File).Sync":           "fsyncs",
	"(*net/http.Client).Do":     "performs a network round trip",
	"(*net/http.Client).Get":    "performs a network round trip",
	"(*net/http.Client).Post":   "performs a network round trip",
	"(*net/http.Client).Head":   "performs a network round trip",
	"net/http.Get":              "performs a network round trip",
	"net/http.Post":             "performs a network round trip",
	"net/http.Head":             "performs a network round trip",
	"net.Dial":                  "dials the network",
	"net.DialTimeout":           "dials the network",
	"(*net.Dialer).Dial":        "dials the network",
	"(*net.Dialer).DialContext": "dials the network",
	"(*os/exec.Cmd).Run":        "waits for a subprocess",
	"(*os/exec.Cmd).Wait":       "waits for a subprocess",
	"(*os/exec.Cmd).Output":     "waits for a subprocess",

	"(*repro/internal/wal.WAL).Commit":   "blocks on the WAL fsync frontier",
	"(*repro/internal/wal.WAL).WaitFor":  "long-polls the WAL tail",
	"(*repro/internal/wal.WAL).ReadFrom": "scans WAL segments from disk",
	"(*repro/internal/wal.WAL).Append":   "appends to the WAL",
	"(*repro/internal/wal.WAL).AppendAt": "appends to the WAL",

	"(*repro/internal/transport.Participant).FetchTask":    "performs a network round trip",
	"(*repro/internal/transport.Participant).Participate":  "performs a network round trip",
	"(*repro/internal/transport.Participant).SubmitReport": "performs a network round trip",
	"(*repro/internal/transport.Admin).CreateSession":      "performs a network round trip",
	"(*repro/internal/transport.Admin).Finalize":           "performs a network round trip",
	"(*repro/internal/transport.Admin).Result":             "performs a network round trip",
}

// HeldExceptions lists the (callee, lock) pairs the design explicitly
// allows despite the callee appearing in Blocking. Entries record a
// reviewed decision, not an escape hatch:
//
//   - WAL appends under the transport locks are the durability design
//     itself (log-before-mutate): Append only buffers the record — the
//     fsync (Commit) happens after the lock is released, so the append
//     under the lock costs an in-memory copy, not a disk wait. With the
//     striped session table the record-ordering lock is the owning
//     stripe's mutex for create/delete and the session's own mutex for
//     assignment/report/finalize/expire; Server.mu stays listed for the
//     replay and replication apply paths that still run under it.
//   - WAL appends under the WAL's own mu are how the WAL is implemented.
var HeldExceptions = map[string]map[string]bool{
	"(*repro/internal/wal.WAL).Append": {
		"repro/internal/transport.Server.mu":      true,
		"repro/internal/transport.tableStripe.mu": true,
		"repro/internal/transport.session.mu":     true,
	},
	"(*repro/internal/wal.WAL).AppendAt": {
		"repro/internal/transport.Server.mu":      true,
		"repro/internal/transport.tableStripe.mu": true,
		"repro/internal/transport.session.mu":     true,
	},
	// Cond.Wait must be called with the condition's own lock held — and
	// atomically releases it while parked, so it never stalls the other
	// acquirers of that lock. The WAL's group-commit waiters park on
	// flushCond (whose L is flushMu). Any *additional* lock held across
	// the Wait is still reported.
	"(*sync.Cond).Wait": {
		"repro/internal/wal.WAL.flushMu": true,
	},
}

// AllowedUnderLock reports whether calling into pkgPath while holding a
// lock is categorically fine. Structured logging is the deliberate "log
// under lock" exception: slog handlers are non-blocking by contract
// (the default handlers write to a local fd), and requiring every
// slog.Info to move outside critical sections would cost more bugs than
// it prevents.
func AllowedUnderLock(pkgPath string) bool {
	return pkgPath == "log/slog"
}
