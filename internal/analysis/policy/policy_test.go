package policy

import "testing"

func TestClassify(t *testing.T) {
	cases := []struct {
		path string
		want Class
	}{
		{"repro/internal/frand", Frand},
		{"repro/internal/secagg", Crypto},
		{"repro/internal/shamir", Crypto},
		{"repro/internal/transport", Protocol},
		{"repro/internal/transport/wire", Protocol},
		{"repro/internal/federated", Protocol},
		{"repro/internal/core", Estimator},
		{"repro/internal/stats", Estimator},
		{"repro/cmd/fednumd", Main},
		{"repro/examples/quickstart", Main},
		{"repro/internal/wal", Harness},
		{"repro/internal/obs", Harness},
		{"repro/internal/brandnew", Harness}, // unknown packages default to the strictest class
		// Test-variant decorations inherit the base package's class.
		{"repro/internal/secagg [repro/internal/secagg.test]", Crypto},
		{"repro/internal/stats_test [repro/internal/stats.test]", Estimator},
		{"repro/internal/stats.test", Main},
	}
	for _, c := range cases {
		if got := Classify(c.path); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestIsTestFile(t *testing.T) {
	if !IsTestFile("/repo/internal/stats/stats_test.go") {
		t.Error("stats_test.go should be a test file")
	}
	if IsTestFile("/repo/internal/stats/stats.go") {
		t.Error("stats.go should not be a test file")
	}
	if IsTestFile("/repo/internal/latest.go") {
		t.Error("latest.go should not be a test file")
	}
}
