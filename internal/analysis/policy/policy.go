// Package policy is the single place where fedlint's analyzers learn what
// kind of package they are looking at. Every analyzer keys its rules off
// the Class returned here, so tightening or relaxing an invariant for a
// package is a one-line change to one table rather than edits to five
// analyzers.
package policy

import (
	"path"
	"strings"
)

// Class partitions the repository's packages by the invariants they must
// uphold.
type Class int

const (
	// Harness covers evaluation and infrastructure code (experiments,
	// chaos, wal, obs, workload, ...): slog-only logging, no math/rand.
	Harness Class = iota
	// Frand is internal/frand itself — the only package allowed to touch
	// math/rand and the home of the deterministic generator.
	Frand
	// Crypto packages (secagg, shamir) produce secure-aggregation mask
	// and share material: crypto/rand only, frand is forbidden. The
	// pairwise-masking security argument (DESIGN.md §2, Bonawitz et al.)
	// collapses if masks come from a seeded deterministic PRNG.
	Crypto
	// Protocol packages (transport, wire, federated) sit on the request
	// path: wire error codes must be typed constants and request contexts
	// must flow from the caller.
	Protocol
	// Estimator packages (core, stats, ldp, distdp, ...) implement the
	// paper's numerical estimators: float equality comparisons are
	// forbidden outside exact-zero sentinels.
	Estimator
	// Main is package main (cmd/*, examples/*) plus synthesized test
	// mains: operator-facing printing and context.Background are fine.
	Main
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case Frand:
		return "frand"
	case Crypto:
		return "crypto"
	case Protocol:
		return "protocol"
	case Estimator:
		return "estimator"
	case Main:
		return "main"
	default:
		return "harness"
	}
}

// classes maps canonical import paths to their class. Paths not listed fall
// back to prefix rules in Classify, then to Harness — the strictest default
// that never weakens a privacy or determinism invariant.
var classes = map[string]Class{
	"repro/internal/frand": Frand,

	"repro/internal/secagg": Crypto,
	"repro/internal/shamir": Crypto,

	"repro/internal/transport":      Protocol,
	"repro/internal/transport/wire": Protocol,
	"repro/internal/federated":      Protocol,

	"repro/internal/core":       Estimator,
	"repro/internal/stats":      Estimator,
	"repro/internal/ldp":        Estimator,
	"repro/internal/distdp":     Estimator,
	"repro/internal/quantile":   Estimator,
	"repro/internal/histogram":  Estimator,
	"repro/internal/fixedpoint": Estimator,
	"repro/internal/dither":     Estimator,
	"repro/internal/meter":      Estimator,
	"repro/internal/field":      Estimator,
	"repro/internal/fedlearn":   Estimator,
}

// Classify returns the class of the package with the given build-system
// import path (test-variant decorations are handled).
func Classify(pkgPath string) Class {
	p := Normalize(pkgPath)
	if strings.HasSuffix(p, ".test") {
		return Main // synthesized test main
	}
	if c, ok := classes[p]; ok {
		return c
	}
	if strings.HasPrefix(p, "repro/cmd/") || strings.HasPrefix(p, "repro/examples/") {
		return Main
	}
	return Harness
}

// Normalize strips the decorations the go command adds to test-variant
// package paths: "p [p.test]" (internal test variant) and the external test
// package "p_test", both of which must inherit p's policies.
func Normalize(pkgPath string) string {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	pkgPath = strings.TrimSuffix(pkgPath, "_test")
	return pkgPath
}

// IsTestFile reports whether the file name denotes a test file. Test files
// get looser rules where the ISSUE's invariants allow it (t.Logf-style
// output, context.Background, deterministic exact-value assertions).
func IsTestFile(filename string) bool {
	return strings.HasSuffix(path.Base(filepath(filename)), "_test.go")
}

// filepath normalizes OS path separators so IsTestFile works on both slash
// styles without importing path/filepath's OS dependence into the table.
func filepath(name string) string {
	return strings.ReplaceAll(name, "\\", "/")
}
