// Package lockset is the shared machinery behind fedlint's concurrency
// analyzers (lockorder, lockheld): it recognizes sync.Mutex/RWMutex
// acquisition and release calls, resolves each to a stable lock-class
// identity (the declared field or variable, not the instance), and walks
// function bodies flow-sensitively maintaining the set of locks held at
// every statement.
//
// The walk is deliberately approximate in the directions that avoid false
// positives on this repository's idioms:
//
//   - `defer mu.Unlock()` keeps the lock held until function exit (it is).
//   - A branch that ends in a terminating statement (`if bad {
//     mu.Unlock(); return err }`) does not leak its held-set changes into
//     the code after the branch.
//   - Two branches that both fall through merge by intersection, so a
//     conditionally acquired lock is not reported as held afterwards.
//   - Loop and switch bodies see the held set at entry; the set after the
//     statement is the entry set (bodies are assumed lock-balanced, which
//     every correct loop is).
//   - Function literals get a fresh, empty held set: a closure usually
//     runs on another goroutine (go, defer, AfterFunc), where the
//     spawner's locks are not held.
package lockset

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Op is a mutex operation kind.
type Op int

const (
	OpLock Op = iota
	OpRLock
	OpUnlock
	OpRUnlock
)

// Held is one acquired lock in the walker's current set.
type Held struct {
	// ID is the stable lock-class key: "pkg/path.Type.field" for a mutex
	// struct field, "pkg/path.var" for a package-level mutex, and a
	// position-qualified name for a local.
	ID string
	// Name is the short display form ("Server.mu").
	Name string
	// Pos is the acquisition site.
	Pos token.Pos
	// Read marks an RLock acquisition.
	Read bool
}

// Callbacks receive the walker's events. Any callback may be nil.
type Callbacks struct {
	// Acquire fires when a lock is acquired, with the set held at that
	// moment (not yet including the new lock).
	Acquire func(held []Held, acq Held)
	// Call fires for every non-mutex call expression evaluated with the
	// given held set. Deferred calls and calls inside function literals do
	// not fire (they run under a different held set).
	Call func(held []Held, call *ast.CallExpr)
	// Blocking fires for intrinsically blocking operations: channel send,
	// channel receive, range over a channel, and select without a default.
	// Operations inside a select's comm clauses do not fire separately —
	// the select itself is the blocking point.
	Blocking func(held []Held, pos token.Pos, what string)
}

// MutexOp reports whether call is a sync.Mutex / sync.RWMutex method call,
// and if so which operation and on which lock class. TryLock variants are
// ignored: they never block and their conditional result is beyond this
// walker's flow model.
func MutexOp(info *types.Info, call *ast.CallExpr) (lock Held, op Op, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return Held{}, 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		op = OpLock
	case "RLock":
		op = OpRLock
	case "Unlock":
		op = OpUnlock
	case "RUnlock":
		op = OpRUnlock
	default:
		return Held{}, 0, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return Held{}, 0, false
	}

	// The method may be promoted through an embedded mutex (s.Lock() with
	// `sync.Mutex` embedded in s): the selection's index path then runs
	// through the embedded field, which is the lock.
	if msel := info.Selections[sel]; msel != nil {
		if idx := msel.Index(); len(idx) > 1 {
			id, name, found := embeddedLockID(msel.Recv(), idx[:len(idx)-1])
			if !found {
				return Held{}, 0, false
			}
			return Held{ID: id, Name: name, Pos: call.Pos(), Read: op == OpRLock}, op, true
		}
	}
	id, name, found := LockID(info, sel.X)
	if !found {
		return Held{}, 0, false
	}
	return Held{ID: id, Name: name, Pos: call.Pos(), Read: op == OpRLock}, op, true
}

// LockID resolves a mutex-valued expression to its lock-class identity.
func LockID(info *types.Info, expr ast.Expr) (id, name string, ok bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			field := s.Obj()
			owner, ownerPath := namedOwner(s.Recv())
			if owner == "" {
				return "", "", false
			}
			return ownerPath + "." + owner + "." + field.Name(), owner + "." + field.Name(), true
		}
		// Qualified package-level mutex: pkg.Mu.
		if v, isVar := info.Uses[e.Sel].(*types.Var); isVar && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name(), v.Name(), true
		}
	case *ast.Ident:
		v, isVar := info.Uses[e].(*types.Var)
		if !isVar {
			return "", "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), v.Name(), true
		}
		// A local mutex (or one reached through a local alias): identity is
		// the declaration, which is stable within the pass.
		return fmt.Sprintf("%s@%d", v.Name(), v.Pos()), v.Name(), true
	}
	return "", "", false
}

// embeddedLockID resolves the embedded-field path of a promoted mutex
// method to the outermost struct's embedded lock field.
func embeddedLockID(recv types.Type, path []int) (id, name string, ok bool) {
	owner, ownerPath := namedOwner(recv)
	if owner == "" || len(path) == 0 {
		return "", "", false
	}
	st, isStruct := deref(recv).Underlying().(*types.Struct)
	if !isStruct || path[0] >= st.NumFields() {
		return "", "", false
	}
	field := st.Field(path[0])
	return ownerPath + "." + owner + "." + field.Name(), owner + "." + field.Name(), true
}

// namedOwner returns the name and package path of the named type behind t
// (through one level of pointer).
func namedOwner(t types.Type) (name, pkgPath string) {
	n, isNamed := deref(t).(*types.Named)
	if !isNamed || n.Obj() == nil {
		return "", ""
	}
	if p := n.Obj().Pkg(); p != nil {
		pkgPath = p.Path()
	}
	return n.Obj().Name(), pkgPath
}

func deref(t types.Type) types.Type {
	if p, isPtr := t.(*types.Pointer); isPtr {
		return p.Elem()
	}
	return t
}

// WalkFunc walks one function body, tracking the held-lock set and firing
// the callbacks.
func WalkFunc(info *types.Info, body *ast.BlockStmt, cb Callbacks) {
	w := &walker{info: info, cb: cb}
	w.stmts(body.List, nil)
}

type walker struct {
	info *types.Info
	cb   Callbacks
	// muteChan suppresses channel-op Blocking events while walking a
	// select's comm clauses: the select statement is the blocking point.
	muteChan int
}

// stmts walks a sequence, returning the fall-through held set and whether
// the sequence definitely terminates (return / branch / panic).
func (w *walker) stmts(list []ast.Stmt, held []Held) ([]Held, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *walker) stmt(s ast.Stmt, held []Held) ([]Held, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, isCall := ast.Unparen(st.X).(*ast.CallExpr); isCall {
			if lock, op, isMu := MutexOp(w.info, call); isMu {
				switch op {
				case OpLock, OpRLock:
					if w.cb.Acquire != nil {
						w.cb.Acquire(held, lock)
					}
					return append(clone(held), lock), false
				case OpUnlock, OpRUnlock:
					return release(held, lock.ID), false
				}
			}
			if isPanicky(w.info, call) {
				w.exprs(held, call.Args...)
				return held, true
			}
		}
		w.exprs(held, st.X)
		return held, false

	case *ast.SendStmt:
		if w.muteChan == 0 && w.cb.Blocking != nil {
			w.cb.Blocking(held, st.Arrow, "channel send")
		}
		w.exprs(held, st.Chan, st.Value)
		return held, false

	case *ast.AssignStmt:
		w.exprs(held, st.Rhs...)
		w.exprs(held, st.Lhs...)
		return held, false

	case *ast.IncDecStmt:
		w.exprs(held, st.X)
		return held, false

	case *ast.DeclStmt:
		if gd, isGen := st.Decl.(*ast.GenDecl); isGen {
			for _, spec := range gd.Specs {
				if vs, isVal := spec.(*ast.ValueSpec); isVal {
					w.exprs(held, vs.Values...)
				}
			}
		}
		return held, false

	case *ast.ReturnStmt:
		w.exprs(held, st.Results...)
		return held, true

	case *ast.BranchStmt:
		return held, true

	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function — exactly what the held set already says, so there is
		// nothing to do. A deferred closure runs at return time under an
		// unknown held set; walk it fresh. Other deferred calls have their
		// arguments evaluated now but run later, so no Call event fires.
		if _, op, isMu := MutexOp(w.info, st.Call); isMu && (op == OpUnlock || op == OpRUnlock) {
			return held, false
		}
		if lit, isLit := ast.Unparen(st.Call.Fun).(*ast.FuncLit); isLit {
			w.stmts(lit.Body.List, nil)
		}
		w.exprs(held, st.Call.Args...)
		return held, false

	case *ast.GoStmt:
		if lit, isLit := ast.Unparen(st.Call.Fun).(*ast.FuncLit); isLit {
			w.stmts(lit.Body.List, nil)
		}
		w.exprs(held, st.Call.Args...)
		return held, false

	case *ast.BlockStmt:
		return w.stmts(st.List, held)

	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)

	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		w.exprs(held, st.Cond)
		thenHeld, thenTerm := w.stmts(st.Body.List, clone(held))
		elseHeld, elseTerm := held, false
		hasElse := st.Else != nil
		if hasElse {
			elseHeld, elseTerm = w.stmt(st.Else, clone(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.exprs(held, st.Cond)
		}
		body := clone(held)
		body, _ = w.stmts(st.Body.List, body)
		if st.Post != nil {
			w.stmt(st.Post, body)
		}
		return held, false

	case *ast.RangeStmt:
		w.exprs(held, st.X)
		if tv, found := w.info.Types[st.X]; found {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && w.muteChan == 0 && w.cb.Blocking != nil {
				w.cb.Blocking(held, st.Range, "range over channel")
			}
		}
		w.stmts(st.Body.List, clone(held))
		return held, false

	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.exprs(held, st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				w.exprs(held, cc.List...)
				w.stmts(cc.Body, clone(held))
			}
		}
		return held, false

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				w.stmts(cc.Body, clone(held))
			}
		}
		return held, false

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && w.muteChan == 0 && w.cb.Blocking != nil {
			w.cb.Blocking(held, st.Pos(), "select with no default")
		}
		for _, c := range st.Body.List {
			cc, isComm := c.(*ast.CommClause)
			if !isComm {
				continue
			}
			if cc.Comm != nil {
				w.muteChan++
				w.stmt(cc.Comm, held)
				w.muteChan--
			}
			w.stmts(cc.Body, clone(held))
		}
		return held, false
	}
	return held, false
}

// exprs walks expressions for calls, channel receives, and function
// literals.
func (w *walker) exprs(held []Held, list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				w.stmts(x.Body.List, nil)
				return false
			case *ast.CallExpr:
				if _, _, isMu := MutexOp(w.info, x); isMu {
					return true
				}
				if w.cb.Call != nil {
					w.cb.Call(held, x)
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && w.muteChan == 0 && w.cb.Blocking != nil {
					w.cb.Blocking(held, x.OpPos, "channel receive")
				}
			}
			return true
		})
	}
}

// isPanicky reports whether the call never returns (panic, os.Exit,
// log.Fatal*, testing Fatal*), terminating the current path.
func isPanicky(info *types.Info, call *ast.CallExpr) bool {
	obj := analysis.CalleeObject(info, call)
	if obj == nil {
		return false
	}
	if obj.Pkg() == nil {
		return obj.Name() == "panic"
	}
	switch obj.Pkg().Path() {
	case "os":
		return obj.Name() == "Exit"
	case "log":
		return obj.Name() == "Fatal" || obj.Name() == "Fatalf" || obj.Name() == "Fatalln"
	case "testing":
		return obj.Name() == "Fatal" || obj.Name() == "Fatalf" || obj.Name() == "FailNow" || obj.Name() == "Skip" || obj.Name() == "Skipf" || obj.Name() == "SkipNow"
	}
	return false
}

func clone(held []Held) []Held {
	return append([]Held(nil), held...)
}

// release removes the most recent acquisition of id; unlocking a lock the
// function never acquired (the *Locked callee convention) is a no-op.
func release(held []Held, id string) []Held {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].ID == id {
			return append(clone(held[:i]), held[i+1:]...)
		}
	}
	return held
}

// intersect keeps the locks present in both branches, preserving a's
// order.
func intersect(a, b []Held) []Held {
	var out []Held
	for _, h := range a {
		for _, g := range b {
			if h.ID == g.ID {
				out = append(out, h)
				break
			}
		}
	}
	return out
}

// Acquires computes, for every package-level function and method with a
// body, the set of lock IDs it may acquire — directly, transitively
// through same-package static calls, and through the cross-package lock
// facts table (callee full name → acquired lock IDs). The result maps
// each function to lockID → one representative acquisition site.
func Acquires(files []*ast.File, info *types.Info, facts map[string][]string) map[*types.Func]map[string]token.Pos {
	type fnDecl struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []fnDecl
	byObj := make(map[*types.Func]*ast.BlockStmt)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			fn, isFn := info.Defs[fd.Name].(*types.Func)
			if !isFn {
				continue
			}
			decls = append(decls, fnDecl{fn, fd.Body})
			byObj[fn] = fd.Body
		}
	}

	acquires := make(map[*types.Func]map[string]token.Pos, len(decls))
	callees := make(map[*types.Func][]*types.Func, len(decls))
	add := func(fn *types.Func, id string, pos token.Pos) bool {
		m := acquires[fn]
		if m == nil {
			m = make(map[string]token.Pos)
			acquires[fn] = m
		}
		if _, seen := m[id]; seen {
			return false
		}
		m[id] = pos
		return true
	}

	for _, d := range decls {
		ast.Inspect(d.body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // closures usually run on another goroutine
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if lock, op, isMu := MutexOp(info, call); isMu && (op == OpLock || op == OpRLock) {
				add(d.fn, lock.ID, call.Pos())
				return true
			}
			if callee, isFn := analysis.CalleeObject(info, call).(*types.Func); isFn {
				if _, local := byObj[callee]; local {
					callees[d.fn] = append(callees[d.fn], callee)
				} else {
					for _, id := range facts[callee.FullName()] {
						add(d.fn, id, call.Pos())
					}
				}
			}
			return true
		})
	}

	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			for _, callee := range callees[d.fn] {
				for id, pos := range acquires[callee] {
					if add(d.fn, id, pos) {
						changed = true
					}
				}
			}
		}
	}
	return acquires
}
