package spanend

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/internal/transport", // every span lifecycle shape, good and bad
	)
}
