// Package spanend enforces the tracing hygiene rule: every span opened
// with trace.Start or (*trace.Recorder).StartSpan must be ended on every
// path out of the function that opened it. A span that is never ended is
// never delivered to the recorder — the trace silently loses exactly the
// operation it was supposed to explain, and the bug only shows up as a
// hole in a timeline long after the code merged.
//
// Accepted shapes, in the order real code should prefer them:
//
//   - `defer sp.End()` anywhere after the Start — ends on every path,
//     including panics; the default.
//   - An explicit `sp.End()` with no `return` statement between the Start
//     and the End — the hot-path shape (middleware that must not hold the
//     span open across the handler), where a deferred End would change
//     semantics. Any return between the two is a path that leaks the span.
//   - The span escaping the function — returned, assigned away, or passed
//     to another call — which transfers the End obligation to the escapee.
//
// Discarding the span result with `_` is always a violation: a discarded
// span can never be ended, so it never reaches the recorder.
//
// Test files are exempt: a test may deliberately leak a span to assert
// recorder behaviour.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/policy"
)

// tracePkg is the import path whose span constructors this check follows.
const tracePkg = "repro/internal/trace"

// Analyzer is the spanend check.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "require every trace.Start / Recorder.StartSpan span to be ended on all paths " +
		"(defer sp.End(), a return-free explicit End, or escape), so traces never silently lose spans.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if policy.IsTestFile(pass.FileName(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// checkBody finds span-opening assignments directly inside one function
// body and verifies each span's End discipline. Nested function literals
// are checked by their own visit, so spans opened there are skipped here.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // owned by its own checkBody visit
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := analysis.CalleeObject(pass.TypesInfo, call)
		var spanExpr ast.Expr
		switch {
		case analysis.IsPkgFunc(obj, tracePkg, "Start") && len(assign.Lhs) == 2:
			spanExpr = assign.Lhs[1]
		case analysis.IsPkgFunc(obj, tracePkg, "StartSpan") && len(assign.Lhs) == 1:
			spanExpr = assign.Lhs[0]
		default:
			return true
		}
		ident, ok := spanExpr.(*ast.Ident)
		if !ok {
			return true // span lands in a field/index: stored away, escape
		}
		if ident.Name == "_" {
			pass.Reportf(call.Pos(), "span from %s is discarded: a discarded span can never be ended and never reaches the recorder; bind it and End it", obj.Name())
			return true
		}
		spanObj := spanVarObject(pass.TypesInfo, ident)
		if spanObj == nil {
			return true
		}
		verdict := classifyUses(pass.TypesInfo, body, spanObj, call.End())
		switch {
		case verdict.deferred, verdict.escapes:
			// defer covers every path; an escaped span is the escapee's
			// obligation.
		case !verdict.ended:
			pass.Reportf(call.Pos(), "span %q is never ended: add `defer %s.End()` right after the Start", ident.Name, ident.Name)
		case verdict.returnBeforeEnd:
			pass.Reportf(call.Pos(), "span %q has a return between Start and its explicit End — that path leaks the span; use `defer %s.End()` or End before every return", ident.Name, ident.Name)
		}
		return true
	})
}

// spanVarObject resolves the variable a span assignment binds: the Def for
// a fresh `:=` name, the Use for plain `=` to an existing variable.
func spanVarObject(info *types.Info, ident *ast.Ident) types.Object {
	if obj := info.Defs[ident]; obj != nil {
		return obj
	}
	return info.Uses[ident]
}

// useVerdict summarizes how one span variable is used after its Start.
type useVerdict struct {
	deferred        bool // defer sp.End() seen
	ended           bool // explicit sp.End() seen
	returnBeforeEnd bool // a return sits between Start and the first explicit End
	escapes         bool // sp returned, assigned away, or passed to a call
}

// classifyUses scans the function body after the Start call and classifies
// every use of the span variable. The "return between Start and End" test
// is positional: with no defer, any return statement in the interval
// (startEnd, firstEndPos) is a path on which the span escapes unended.
func classifyUses(info *types.Info, body *ast.BlockStmt, spanObj types.Object, startEnd token.Pos) useVerdict {
	var v useVerdict
	firstEnd := token.NoPos
	var returns []token.Pos

	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			if isEndCall(info, node.Call, spanObj) {
				v.deferred = true
				return false
			}
		case *ast.ReturnStmt:
			if node.Pos() > startEnd {
				returns = append(returns, node.Pos())
			}
			// A returned span escapes: ending it becomes the caller's job.
			for _, res := range node.Results {
				if usesObj(info, res, spanObj) {
					v.escapes = true
				}
			}
		case *ast.CallExpr:
			if node.Pos() <= startEnd {
				return true
			}
			if isEndCall(info, node, spanObj) {
				v.ended = true
				if firstEnd == token.NoPos || node.Pos() < firstEnd {
					firstEnd = node.Pos()
				}
				return true
			}
			// The span passed as an argument (not as method receiver)
			// escapes to the callee.
			for _, arg := range node.Args {
				if usesObj(info, arg, spanObj) {
					v.escapes = true
				}
			}
		case *ast.AssignStmt:
			if node.Pos() <= startEnd {
				return true
			}
			// The span stored somewhere else escapes.
			for _, rhs := range node.Rhs {
				if usesObj(info, rhs, spanObj) {
					v.escapes = true
				}
			}
		}
		return true
	})

	if v.ended && !v.deferred {
		for _, pos := range returns {
			if pos < firstEnd {
				v.returnBeforeEnd = true
				break
			}
		}
	}
	return v
}

// isEndCall reports whether call is `sp.End()` on the given span variable.
func isEndCall(info *types.Info, call *ast.CallExpr, spanObj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == spanObj
}

// usesObj reports whether expr mentions the span variable.
func usesObj(info *types.Info, expr ast.Expr, spanObj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == spanObj {
			found = true
			return false
		}
		return true
	})
	return found
}
