package transport

import (
	"context"

	"repro/internal/trace"
)

// Tests may leak spans deliberately (e.g. to assert recorder behaviour);
// the check skips test files entirely.
func leakOnPurpose(ctx context.Context) {
	_, sp := trace.Start(ctx, "leaky")
	sp.Attr("k", "v")
}
