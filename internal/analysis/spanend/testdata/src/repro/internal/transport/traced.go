// Package transport fixture: span lifecycle shapes, good and bad.
package transport

import (
	"context"

	"repro/internal/trace"
)

// DeferredEnd is the default good shape: defer covers every path.
func DeferredEnd(ctx context.Context) error {
	ctx, sp := trace.Start(ctx, "op")
	defer sp.End()
	sp.Attr("k", "v")
	if ctx == nil {
		return nil
	}
	return nil
}

// NeverEnded leaks the span on every path.
func NeverEnded(ctx context.Context) {
	_, sp := trace.Start(ctx, "op") // want `span "sp" is never ended`
	sp.Attr("k", "v")
}

// Discarded throws the span away at birth.
func Discarded(ctx context.Context) {
	_, _ = trace.Start(ctx, "op") // want `span from Start is discarded`
}

// ExplicitEndNoReturn is the hot-path shape: a return-free interval
// between Start and End, then branching freely afterwards.
func ExplicitEndNoReturn(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "admit")
	sp.Attr("k", "v")
	sp.End()
	if fail {
		return nil
	}
	return nil
}

// ReturnBetweenStartAndEnd leaks the span on the early-return path.
func ReturnBetweenStartAndEnd(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "op") // want `span "sp" has a return between Start and its explicit End`
	if fail {
		return nil
	}
	sp.End()
	return nil
}

// EndOnEveryBranchStillFlagged: the heuristic is positional, so even a
// correctly End-before-return branch counts as ended with an earlier End
// position — this shape (End in one branch, return in another after it)
// stays clean.
func EndOnEveryBranchStillFlagged(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "op")
	sp.End()
	if fail {
		return nil
	}
	return nil
}

// EscapesByReturn hands the End obligation to the caller.
func EscapesByReturn(ctx context.Context) *trace.Span {
	_, sp := trace.Start(ctx, "op")
	return sp
}

// EscapesByCall hands the span to another function.
func EscapesByCall(ctx context.Context) {
	_, sp := trace.Start(ctx, "op")
	finish(sp)
}

// EscapesByStore parks the span in a struct for a later hook to End.
func EscapesByStore(ctx context.Context, h *holder) {
	_, sp := trace.Start(ctx, "op")
	h.sp = sp
}

func finish(sp *trace.Span) { sp.End() }

type holder struct{ sp *trace.Span }

// RootSpanDeferred: the Recorder.StartSpan entry point gets the same
// treatment as trace.Start.
func RootSpanDeferred(rec *trace.Recorder) {
	sp := rec.StartSpan("fed.round")
	defer sp.End()
}

// RootSpanLeaked leaks a root span.
func RootSpanLeaked(rec *trace.Recorder) {
	sp := rec.StartSpan("fed.round") // want `span "sp" is never ended`
	sp.Attr("k", "v")
}

// ClosureOwnsItsSpan: spans opened inside a function literal are checked
// against that literal's body, not the enclosing function's.
func ClosureOwnsItsSpan(ctx context.Context) func() {
	return func() {
		_, sp := trace.Start(ctx, "inner") // want `span "sp" is never ended`
		sp.Attr("k", "v")
	}
}
