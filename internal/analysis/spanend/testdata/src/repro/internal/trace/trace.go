// Package trace fixture: the span API surface spanend polices.
package trace

import "context"

// Span is the fixture span; nil-safe like the real one.
type Span struct{}

// End finishes the span.
func (s *Span) End() {}

// Attr sets a key/value attribute.
func (s *Span) Attr(key, value string) {}

// Recorder is the fixture ring buffer.
type Recorder struct{}

// StartSpan opens a root span recorded directly against the recorder.
func (r *Recorder) StartSpan(name string) *Span { return &Span{} }

// Start opens a span as a child of the context's active span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
