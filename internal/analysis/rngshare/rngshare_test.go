package rngshare

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/internal/experiments", // positives: capture/arg/method; negatives: split handoffs
	)
}
