// Package experiments fixture: goroutine use of deterministic RNGs, the
// shapes the engine's confinement rule allows and forbids.
package experiments

import (
	"sync"

	"repro/internal/frand"
)

// consume stands in for any worker body taking a stream.
func consume(r *frand.RNG) uint64 { return r.Uint64() }

// consumeValue takes the RNG by value (still a shared state copy hazard in
// real code, and still a handoff here).
func consumeValue(r frand.RNG) {}

// BadCapture shares one stream with a spawned goroutine via closure.
func BadCapture() {
	r := frand.New(1)
	go func() {
		_ = r.Uint64() // want `goroutine captures \*frand\.RNG "r" from the enclosing scope`
	}()
	_ = r.Uint64()
}

// BadArg hands the RNG itself across the boundary.
func BadArg() {
	r := frand.New(2)
	go consume(r) // want `\*frand\.RNG "r" passed into a goroutine`
}

// BadValueArg hands a dereferenced RNG value across the boundary.
func BadValueArg() {
	r := frand.New(3)
	go consumeValue(*r) // want `\*frand\.RNG "r" passed into a goroutine`
}

// BadMethod runs an RNG method as the goroutine body.
func BadMethod() {
	r := frand.New(4)
	go r.Uint64() // want `goroutine calls a method on \*frand\.RNG "r"`
}

// GoodSplitArg evaluates the split in the spawning goroutine — the
// goroutine receives a private child stream.
func GoodSplitArg() {
	r := frand.New(5)
	go consume(r.Split())
}

// GoodPreSplit is the engine pattern: one pre-split stream per task,
// workers index the slice by their task id and never share a stream.
func GoodPreSplit() {
	root := frand.New(6)
	streams := root.SplitN(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		w := w
		go func() {
			defer wg.Done()
			_ = consume(streams[w])
		}()
	}
	wg.Wait()
}

// GoodLocal declares its own stream inside the goroutine.
func GoodLocal() {
	go func() {
		r := frand.New(7)
		_ = r.Uint64()
	}()
}

// GoodParam receives the stream as a literal parameter, evaluated at spawn
// time from a split.
func GoodParam() {
	root := frand.New(8)
	go func(r *frand.RNG) {
		_ = r.Uint64()
	}(root.Split())
}

// participant mirrors the transport client shape: a struct carrying its
// own private stream in an RNG-typed field.
type participant struct {
	RNG *frand.RNG
}

// GoodFieldKey builds a participant inside the goroutine from a stream
// passed as a parameter. The composite-literal key `RNG:` names the struct
// field, not an enclosing-scope variable — no capture.
func GoodFieldKey() {
	root := frand.New(9)
	go func(r *frand.RNG) {
		p := &participant{RNG: r}
		_ = p.RNG.Uint64()
	}(root.Split())
}

// GoodFieldSelector reads the RNG field of a goroutine-local struct; the
// selector names the field object, and the struct itself was built from a
// private split.
func GoodFieldSelector() {
	root := frand.New(10)
	go func(r *frand.RNG) {
		p := participant{RNG: r}
		_ = p.RNG.Uint64()
	}(root.Split())
}
