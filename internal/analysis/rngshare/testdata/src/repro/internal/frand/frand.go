// Package frand is a fixture stub of the real deterministic generator,
// carrying just enough surface for the rngshare fixtures.
package frand

// RNG is the deterministic generator handle.
type RNG struct{ state uint64 }

// New returns a seeded RNG.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 draws 64 bits.
func (r *RNG) Uint64() uint64 {
	r.state = r.state*6364136223846793005 + 1
	return r.state
}

// Split derives an independent child stream.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }

// SplitN derives n independent child streams.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}
