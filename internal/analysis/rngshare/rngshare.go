// Package rngshare enforces the engine's goroutine-confinement rule for
// deterministic randomness: a *frand.RNG must never cross a goroutine
// boundary. frand's xoshiro state is not goroutine-safe — concurrent draws
// race — and even a data-race-free shared stream destroys reproducibility,
// because the interleaving of draws then depends on scheduling. The
// parallel experiment engine instead pre-splits one child stream per task
// in the spawning goroutine (frand.SplitN), so each task's randomness is a
// pure function of (seed, task index) and results are bit-identical at any
// worker count.
//
// Three shapes are flagged on `go` statements:
//
//	go f(r)                  // RNG handed to the spawned goroutine
//	go r.Method(...)         // method call on an RNG in the goroutine
//	go func() { r.Uint64() } // RNG captured as a free variable
//
// Evaluating a split in the caller remains legal — `go f(r.Split())` runs
// r.Split() in the spawning goroutine (Go evaluates `go` call arguments
// before the goroutine starts), handing the child a private stream.
// Carrying a pre-split slice ([]*frand.RNG) into workers that index it by
// task is likewise legal and is the engine's canonical pattern.
package rngshare

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// frandPath is the import path of the deterministic generator.
const frandPath = "repro/internal/frand"

// Analyzer is the rngshare check.
var Analyzer = &analysis.Analyzer{
	Name: "rngshare",
	Doc: "forbid *frand.RNG values from crossing goroutine boundaries. " +
		"frand streams are not goroutine-safe and sharing one breaks bit-for-bit reproducibility; " +
		"pre-split per-task streams in the spawning goroutine (Split/SplitN).",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, g)
			}
			return true
		})
	}
	return nil, nil
}

func checkGoStmt(pass *analysis.Pass, g *ast.GoStmt) {
	call := g.Call
	// go r.Method(...): the method executes in the new goroutine with the
	// RNG receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := analysis.PeelConversions(pass.TypesInfo, sel.X).(*ast.Ident); ok && isRNGIdent(pass.TypesInfo, id) {
			pass.Reportf(sel.X.Pos(), "goroutine calls a method on *frand.RNG %q: frand streams are not goroutine-safe and sharing one breaks reproducibility; give the goroutine its own stream split in the spawning goroutine", id.Name)
		}
	}
	// go f(..., r, ...): the RNG value itself is handed over — whether as
	// r, *r, &r, or through a conversion. A nested call such as
	// go f(r.Split()) is evaluated in the spawning goroutine and is the
	// sanctioned way to hand off randomness.
	for _, arg := range call.Args {
		if id, ok := peelIndirections(pass.TypesInfo, arg).(*ast.Ident); ok && isRNGIdent(pass.TypesInfo, id) {
			pass.Reportf(arg.Pos(), "*frand.RNG %q passed into a goroutine: frand streams are not goroutine-safe and sharing one breaks reproducibility; pass a private stream split in the caller instead (go f(r.Split()))", id.Name)
		}
	}
	// go func() { ... r ... }(): RNG captured as a free variable.
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || reported[obj] || !isRNGType(obj.Type()) {
			return true
		}
		v, isVar := obj.(*types.Var)
		if !isVar {
			return true
		}
		// Struct fields are not captures: a composite-literal key
		// (Participant{RNG: ...}) or a selector on a goroutine-local value
		// (p.RNG) names the field object, not a free variable. The hazard
		// the rule targets is the enclosing-scope *variable* crossing the
		// boundary, and that variable is what the other checks see.
		if v.IsField() {
			return true
		}
		// Objects declared inside the literal (params, locals, range
		// variables) are private to the goroutine; only captures of
		// enclosing-scope RNGs escape.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(), "goroutine captures *frand.RNG %q from the enclosing scope: frand streams are not goroutine-safe and sharing one breaks reproducibility; pre-split one stream per task (SplitN) and capture only the task's own stream", id.Name)
		return true
	})
}

// peelIndirections strips conversions, dereferences (*r) and
// address-taking (&r) to reach the underlying identifier.
func peelIndirections(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = analysis.PeelConversions(info, e)
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return e
			}
			e = x.X
		default:
			return e
		}
	}
}

// isRNGIdent reports whether the identifier denotes a variable of type
// *frand.RNG (or frand.RNG).
func isRNGIdent(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return isRNGType(obj.Type())
}

// isRNGType reports whether t is frand.RNG or *frand.RNG.
func isRNGType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == frandPath && obj.Name() == "RNG"
}
