package enums

type Kind string

const (
	KindCreate Kind = "create"
	KindReport Kind = "report"
	KindClose  Kind = "close"
)

type Level int

const (
	LevelLow Level = iota
	LevelMid
	LevelHigh
)

// Full coverage is exhaustive.
func describe(k Kind) string {
	switch k {
	case KindCreate:
		return "create"
	case KindReport:
		return "report"
	case KindClose:
		return "close"
	}
	return ""
}

// An explicit default is an explicit decision.
func fallback(k Kind) string {
	switch k {
	case KindCreate:
		return "create"
	default:
		return "other"
	}
}

// Missing members without a default silently drop a newly added kind.
func partial(k Kind) string {
	switch k { // want `switch over Kind is not exhaustive: missing KindReport, KindClose`
	case KindCreate:
		return "create"
	}
	return ""
}

// Integer-backed enums get the same rule.
func rank(l Level) int {
	switch l { // want `switch over Level is not exhaustive: missing LevelHigh`
	case LevelLow:
		return 0
	case LevelMid:
		return 1
	}
	return -1
}

// Non-constant case expressions opt the switch out: coverage is
// undecidable.
func dynamic(k, other Kind) bool {
	switch k {
	case other:
		return true
	}
	return false
}

// Switches over plain strings are not enums.
func plain(s string) bool {
	switch s {
	case "x":
		return true
	}
	return false
}
