package enumuse

import "repro/enums"

// Cross-package switches resolve the enum's members through the import
// and the suggested fix qualifies the missing constants.
func Describe(k enums.Kind) string {
	switch k { // want `switch over Kind is not exhaustive: missing KindClose`
	case enums.KindCreate, enums.KindReport:
		return "known"
	}
	return ""
}

// One case listing every member is exhaustive.
func Known(k enums.Kind) bool {
	switch k {
	case enums.KindCreate, enums.KindReport, enums.KindClose:
		return true
	}
	return false
}
