// Package exhaustenum enforces exhaustiveness for switches over the
// repository's enum-like named types: wire codes, round-timeline event
// kinds, replication roles, shed reasons. Every switch whose tag is such
// a type must either cover every declared constant or carry an explicit
// default — "fell through silently" is how a newly added RoundKind ships
// with a timeline renderer that drops it, or a new shed reason that no
// dashboard ever attributes.
//
// A type participates when it is a named type declared under the repro
// module with a string or integer underlying type and at least two
// package-level constants of exactly that type. Coverage is by constant
// value, so aliases of the same value count once. Switches containing a
// non-constant case expression are skipped — the analyzer cannot reason
// about them. Test files are exempt.
//
// Diagnostics carry a suggested fix that appends the missing constants
// as one empty case clause; `fedlint -fix` applies it, turning the
// finding into an explicit decision point in the diff.
package exhaustenum

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/policy"
)

// Analyzer is the exhaustenum check.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustenum",
	Doc: "switches over repro enum-like types (wire codes, round kinds, replication roles, shed reasons) " +
		"must cover every declared constant or carry an explicit default.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if policy.IsTestFile(pass.FileName(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, isSwitch := n.(*ast.SwitchStmt)
			if !isSwitch || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, f, sw)
			return true
		})
	}
	return nil, nil
}

func checkSwitch(pass *analysis.Pass, file *ast.File, sw *ast.SwitchStmt) {
	tv, known := pass.TypesInfo.Types[sw.Tag]
	if !known {
		return
	}
	named, isNamed := types.Unalias(tv.Type).(*types.Named)
	if !isNamed {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), "repro/") {
		return
	}
	if basic, isBasic := named.Underlying().(*types.Basic); !isBasic ||
		basic.Info()&(types.IsString|types.IsInteger) == 0 {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}

	covered := make(map[string]bool)
	var lastCase *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, isCase := stmt.(*ast.CaseClause)
		if !isCase {
			continue
		}
		lastCase = cc
		if cc.List == nil {
			return // explicit default: the author opted out of exhaustiveness
		}
		for _, expr := range cc.List {
			v := pass.TypesInfo.Types[expr].Value
			if v == nil {
				return // non-constant case: cannot reason about coverage
			}
			covered[v.ExactString()] = true
		}
	}
	if lastCase == nil {
		return // empty switch body; vet-level dead code, not our concern
	}

	var missing []*types.Const
	for _, m := range members {
		if !covered[m.Val().ExactString()] {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return
	}

	names := make([]string, len(missing))
	qualified := make([]string, len(missing))
	q := qualifier(pass, file, obj.Pkg())
	for i, m := range missing {
		names[i] = m.Name()
		qualified[i] = q + m.Name()
	}

	diag := analysis.Diagnostic{
		Pos: sw.Pos(),
		End: sw.Tag.End(),
		Message: fmt.Sprintf("switch over %s is not exhaustive: missing %s (add the cases or an explicit default)",
			obj.Name(), strings.Join(names, ", ")),
	}
	if q != "" || obj.Pkg() == pass.Pkg {
		indent := strings.Repeat("\t", pass.Position(lastCase.Pos()).Column-1)
		diag.SuggestedFixes = []analysis.SuggestedFix{{
			Message: fmt.Sprintf("add empty case for %s", strings.Join(names, ", ")),
			TextEdits: []analysis.TextEdit{{
				Pos:     lastCase.End(),
				End:     lastCase.End(),
				NewText: []byte("\n" + indent + "case " + strings.Join(qualified, ", ") + ":"),
			}},
		}}
	}
	pass.Report(diag)
}

// enumMembers returns the package-level constants declared with exactly
// the named type, sorted by declaration order (scope names are sorted,
// which is stable and good enough for diagnostics).
func enumMembers(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var members []*types.Const
	for _, name := range scope.Names() {
		c, isConst := scope.Lookup(name).(*types.Const)
		if isConst && types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Pos() < members[j].Pos() })
	return members
}

// qualifier returns the prefix ("", "wire.", "alias.") that names pkg's
// exported constants inside file, resolving import aliases. Empty string
// with a foreign package means the import is not visible by name and no
// fix can be offered.
func qualifier(pass *analysis.Pass, file *ast.File, pkg *types.Package) string {
	if pkg == pass.Pkg {
		return ""
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != pkg.Path() {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name + "."
		}
		return pkg.Name() + "."
	}
	return ""
}
