package exhaustenum

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/enums",   // in-package switches: full, default, partial, dynamic
		"repro/enumuse", // cross-package member resolution
	)
}

// TestSuggestedFix asserts the fix appends one empty case clause naming
// the missing members, qualified for the consuming file.
func TestSuggestedFix(t *testing.T) {
	type fix struct{ message, text string }
	var fixes []fix
	probe := &analysis.Analyzer{Name: Analyzer.Name, Doc: Analyzer.Doc, Run: Analyzer.Run}
	checktest.RunCollect(t, "testdata", probe, []string{"repro/enums", "repro/enumuse"}, func(d analysis.Diagnostic) {
		for _, f := range d.SuggestedFixes {
			for _, e := range f.TextEdits {
				fixes = append(fixes, fix{f.Message, string(e.NewText)})
			}
		}
	})
	want := []fix{
		{"add empty case for KindReport, KindClose", "\n\tcase KindReport, KindClose:"},
		{"add empty case for LevelHigh", "\n\tcase LevelHigh:"},
		{"add empty case for KindClose", "\n\tcase enums.KindClose:"},
	}
	if len(fixes) != len(want) {
		t.Fatalf("got %d suggested fixes, want %d: %+v", len(fixes), len(want), fixes)
	}
	for i := range want {
		if fixes[i] != want[i] {
			t.Errorf("fix %d: got %+v, want %+v", i, fixes[i], want[i])
		}
	}
}
