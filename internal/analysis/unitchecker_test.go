package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"go/token"
)

// fixFile writes src to a temp file and registers it in a FileSet so
// TextEdit positions resolve to real byte offsets, mirroring what the
// unitchecker sees after parsing.
func fixFile(t *testing.T, src string) (string, *token.FileSet, func(off int) token.Pos) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fix.go")
	if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	tf := fset.AddFile(path, -1, len(src))
	tf.SetLinesForContent([]byte(src))
	return path, fset, tf.Pos
}

// TestApplyFixes exercises the `fedlint -fix` edit application: a
// replacement and an insertion in one file, applied last-offset-first so
// earlier offsets stay valid.
func TestApplyFixes(t *testing.T) {
	src := "package p\n\nconst s = \"expired\"\n"
	path, fset, pos := fixFile(t, src)

	lit := strings.Index(src, `"expired"`)
	nl := strings.LastIndex(src, "\n")
	diags := []namedDiag{
		{analyzer: "errcode", diag: Diagnostic{
			Pos: pos(lit),
			SuggestedFixes: []SuggestedFix{{
				Message: `replace "expired" with wire.CodeExpired`,
				TextEdits: []TextEdit{{
					Pos: pos(lit), End: pos(lit + len(`"expired"`)), NewText: []byte("wire.CodeExpired"),
				}},
			}},
		}},
		{analyzer: "exhaustenum", diag: Diagnostic{
			Pos: pos(nl),
			SuggestedFixes: []SuggestedFix{{
				Message: "append a trailer",
				// End unset: a pure insertion, the exhaustenum case-clause shape.
				TextEdits: []TextEdit{{Pos: pos(nl), NewText: []byte("\n// trailer")}},
			}},
		}},
	}
	if code := applyFixes(fset, diags); code != 0 {
		t.Fatalf("applyFixes = %d, want 0", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "package p\n\nconst s = wire.CodeExpired\n// trailer\n"
	if string(got) != want {
		t.Errorf("fixed file:\n%q\nwant:\n%q", got, want)
	}
}

// TestApplyFixesUnfixable: diagnostics without suggested fixes are
// reported and the exit code says "findings remain".
func TestApplyFixesUnfixable(t *testing.T) {
	src := "package p\n"
	path, fset, pos := fixFile(t, src)
	diags := []namedDiag{
		{analyzer: "lockheld", diag: Diagnostic{Pos: pos(0), Message: "no mechanical fix"}},
	}
	if code := applyFixes(fset, diags); code != 1 {
		t.Fatalf("applyFixes = %d, want 1 for an unfixable diagnostic", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != src {
		t.Errorf("file changed despite no applicable fixes:\n%q", got)
	}
}

// TestApplyFixesOverlap: of two fixes whose edits overlap, exactly one
// is applied; the file is never corrupted by double-splicing.
func TestApplyFixesOverlap(t *testing.T) {
	src := "package p\n\nvar x = 12345\n"
	path, fset, pos := fixFile(t, src)
	num := strings.Index(src, "12345")
	mk := func(start, end int, text string) namedDiag {
		return namedDiag{analyzer: "t", diag: Diagnostic{
			Pos: pos(start),
			SuggestedFixes: []SuggestedFix{{
				Message:   "rewrite",
				TextEdits: []TextEdit{{Pos: pos(start), End: pos(end), NewText: []byte(text)}},
			}},
		}}
	}
	diags := []namedDiag{
		mk(num, num+4, "9"),   // replaces "1234"
		mk(num+2, num+5, "8"), // overlaps; applied first (higher offset), shadows the other
	}
	if code := applyFixes(fset, diags); code != 0 {
		t.Fatalf("applyFixes = %d, want 0", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "package p\n\nvar x = 128\n"
	if string(got) != want {
		t.Errorf("fixed file:\n%q\nwant:\n%q", got, want)
	}
}
