// Package randsource enforces the repository's two-tier randomness
// discipline:
//
//   - Simulation randomness must flow through a seeded *frand.RNG so every
//     protocol run and experiment is reproducible bit for bit (Figures 1–4
//     of the paper are regenerated from fixed seeds). Importing math/rand
//     or math/rand/v2 anywhere outside internal/frand, or seeding frand
//     from the wall clock, silently breaks that property.
//
//   - Secure-aggregation mask and share material must come from crypto/rand.
//     The pairwise-masking privacy argument (DESIGN.md §2, Bonawitz et al.
//     CCS 2017; see also the distributed discrete Gaussian line of work)
//     assumes masks indistinguishable from uniform by the server; a seeded
//     deterministic generator voids it, so internal/frand is forbidden in
//     the crypto-class packages (secagg, shamir) outside their tests.
package randsource

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/analysis/policy"
)

// frandPath is the import path of the deterministic generator; it is both
// the only legal home of math/rand and illegal inside crypto packages.
const frandPath = "repro/internal/frand"

// Analyzer is the randsource check.
var Analyzer = &analysis.Analyzer{
	Name: "randsource",
	Doc: "forbid math/rand outside internal/frand, frand in crypto packages, and time-derived seeds. " +
		"Deterministic draws must use a seeded frand.RNG; secure-aggregation mask/share material must use crypto/rand.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	cls := policy.Classify(pass.PkgPath)
	for _, f := range pass.Files {
		testFile := policy.IsTestFile(pass.FileName(f))
		checkImports(pass, f, cls, testFile)
		checkTimeSeeds(pass, f)
	}
	return nil, nil
}

// checkImports flags forbidden randomness imports for the package's class.
func checkImports(pass *analysis.Pass, f *ast.File, cls policy.Class, testFile bool) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "math/rand", "math/rand/v2":
			if cls != policy.Frand {
				pass.Reportf(imp.Pos(), "import of %s is forbidden outside internal/frand: deterministic draws must use a seeded frand.RNG (bit-for-bit reproducibility), mask material must use crypto/rand", path)
			}
		case frandPath:
			if cls == policy.Crypto && !testFile {
				pass.Reportf(imp.Pos(), "internal/frand is a deterministic PRNG and must not produce mask or share material in a crypto package: use crypto/rand (pairwise-masking security, DESIGN.md §2)")
			}
		}
	}
}

// checkTimeSeeds flags frand.New seeds derived from the wall clock, both
// nested directly in the call and flowing through a local variable:
//
//	frand.New(uint64(time.Now().UnixNano()))     // direct
//	seed := uint64(time.Now().UnixNano())
//	r := frand.New(seed)                          // via local flow
func checkTimeSeeds(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		checkFuncSeeds(pass, fn.Body)
		return true
	})
}

func checkFuncSeeds(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass 1: locals assigned (anywhere in the function) from an
	// expression containing time.Now.
	tainted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !containsTimeNow(pass.TypesInfo, rhs) {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
				if obj := lhsObject(pass.TypesInfo, id); obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})
	// Pass 2: seeds handed to frand.New.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !analysis.IsPkgFunc(analysis.CalleeObject(pass.TypesInfo, call), frandPath, "New") {
			return true
		}
		for _, arg := range call.Args {
			if containsTimeNow(pass.TypesInfo, arg) {
				pass.Reportf(arg.Pos(), "time-derived frand seed breaks run-to-run reproducibility: thread an explicit seed (or draw the default from crypto/rand)")
				continue
			}
			if id, ok := analysis.PeelConversions(pass.TypesInfo, arg).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && tainted[obj] {
					pass.Reportf(arg.Pos(), "seed %q is derived from time.Now, which breaks run-to-run reproducibility: thread an explicit seed (or draw the default from crypto/rand)", id.Name)
				}
			}
		}
		return true
	})
}

// lhsObject resolves the object an assignment target denotes, covering both
// `x := ...` (Defs) and `x = ...` (Uses).
func lhsObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// containsTimeNow reports whether the expression contains a call to
// time.Now.
func containsTimeNow(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if analysis.IsPkgFunc(analysis.CalleeObject(info, call), "time", "Now") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
