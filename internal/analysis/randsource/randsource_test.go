package randsource

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/internal/frand",       // negative: math/rand allowed at home
		"repro/internal/secagg",      // positive: frand in a crypto package; negative: crypto/rand + test file
		"repro/internal/experiments", // positive: math/rand imports, time-derived seeds
	)
}
