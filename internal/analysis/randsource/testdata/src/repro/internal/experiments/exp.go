// Package experiments fixture: harness code where math/rand and
// time-derived seeds are forbidden.
package experiments

import (
	"math/rand"       // want `import of math/rand is forbidden outside internal/frand`
	v2 "math/rand/v2" // want `import of math/rand/v2 is forbidden outside internal/frand`
	"time"

	"repro/internal/frand"
)

// Draw uses the forbidden generators so their imports resolve.
func Draw() float64 { return rand.Float64() + v2.Float64() }

// BadDirectSeed nests the wall clock straight into the seed argument.
func BadDirectSeed() *frand.RNG {
	return frand.New(uint64(time.Now().UnixNano())) // want `time-derived frand seed breaks run-to-run reproducibility`
}

// BadFlowSeed launders the wall clock through a local before seeding.
func BadFlowSeed(seed uint64) *frand.RNG {
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return frand.New(seed) // want `seed "seed" is derived from time.Now`
}

// GoodSeed threads an explicit caller-provided seed.
func GoodSeed(seed uint64) *frand.RNG {
	return frand.New(seed)
}

// GoodTiming may measure wall-clock time for reporting, just not for seeds.
func GoodTiming() time.Duration {
	start := time.Now()
	_ = frand.New(7)
	return time.Since(start)
}
