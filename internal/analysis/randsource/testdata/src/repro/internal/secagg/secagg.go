// Package secagg fixture: crypto-class package where frand is forbidden
// and crypto/rand is the only legal entropy source.
package secagg

import (
	crand "crypto/rand"

	"repro/internal/frand" // want `internal/frand is a deterministic PRNG and must not produce mask or share material`
)

// DeterministicMask shows the forbidden pattern.
func DeterministicMask(seed uint64) uint64 {
	return frand.New(seed).Uint64()
}

// SecureMask shows the required pattern: crypto/rand entropy.
func SecureMask() ([]byte, error) {
	b := make([]byte, 32)
	_, err := crand.Read(b)
	return b, err
}
