// Test files of crypto packages may use frand: deterministic fixtures are
// fine as long as production mask material never touches them.
package secagg

import (
	"testing"

	"repro/internal/frand"
)

func TestDeterministicFixture(t *testing.T) {
	if frand.New(1).Uint64() == 0 {
		t.Skip("fixture only")
	}
}
