// Package frand is a fixture stub of the real deterministic generator.
// math/rand is legal here and nowhere else.
package frand

import "math/rand"

// RNG is the deterministic generator handle.
type RNG struct{ inner *rand.Rand }

// New returns a seeded RNG. Inside internal/frand, math/rand is allowed.
func New(seed uint64) *RNG {
	return &RNG{inner: rand.New(rand.NewSource(int64(seed)))}
}

// Uint64 draws 64 bits.
func (r *RNG) Uint64() uint64 { return r.inner.Uint64() }
