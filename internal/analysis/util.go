package analysis

import (
	"go/ast"
	"go/types"
)

// FileName returns the source file name of an AST file in the pass.
func (p *Pass) FileName(f *ast.File) string {
	return p.Fset.Position(f.Pos()).Filename
}

// CalleeObject resolves the object a call expression invokes: a package
// function (fmt.Println, dot-imported or qualified) or a method. It returns
// nil for calls through function values, conversions, and other dynamic
// callees that the analyzers here never need to police.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether obj is the package-level function pkgPath.name.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsConversion reports whether the call expression is a type conversion.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// PeelConversions strips parentheses and type conversions from an
// expression: PeelConversions(`uint64((x))`) yields `x`.
func PeelConversions(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || !IsConversion(info, call) || len(call.Args) != 1 {
			return e
		}
		e = call.Args[0]
	}
}
