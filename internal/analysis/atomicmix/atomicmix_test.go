package atomicmix

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer, "repro/lockfix/counters")
}
