// Package atomicmix enforces the all-or-nothing rule of sync/atomic: a
// field (or package-level variable) that is accessed through the
// sync/atomic functions anywhere must be accessed that way everywhere.
// One plain load next to atomic stores is a data race the race detector
// only catches when the interleaving happens in CI, and on weakly
// ordered hardware it reads torn or stale values silently — epochs going
// backwards, breaker counters double-counting, gauge bits interleaving.
//
// The modern fix is usually better than discipline: the atomic.Int64 /
// atomic.Uint64 / atomic.Bool / atomic.Pointer wrapper types make plain
// access unrepresentable, which is why the repository's own concurrency
// code (server epochs, replica lag gauges, obs.FloatCounter bits) uses
// them exclusively. This analyzer polices the function-style remainder,
// where the compiler cannot help.
//
// Exemptions, both deliberate:
//
//   - composite-literal keys (S{done: 0}): zero-initialization happens
//     before the value is shared, and forbidding it would outlaw every
//     constructor;
//   - test files: a test may read counters plainly after goroutines are
//     joined.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/policy"
)

// Analyzer is the atomicmix check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed through sync/atomic anywhere must never be read or written plainly elsewhere; " +
		"mixed access is a silent data race — prefer the atomic.Int64-style wrapper types.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: find every variable whose address is taken by a sync/atomic
	// call, remembering the identifiers inside those calls (sanctioned
	// uses) and one representative atomic site per variable.
	atomicVars := make(map[types.Object]token.Pos)
	sanctioned := make(map[*ast.Ident]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, isUnary := ast.Unparen(arg).(*ast.UnaryExpr)
				if !isUnary || unary.Op != token.AND {
					continue
				}
				obj, ident := addressedVar(pass.TypesInfo, unary.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicVars[obj]; !seen {
					atomicVars[obj] = call.Pos()
				}
				sanctioned[ident] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil, nil
	}

	// Pass 2: every other mention of those variables is a plain access.
	for _, f := range pass.Files {
		if policy.IsTestFile(pass.FileName(f)) {
			continue
		}
		var compositeKeys map[*ast.Ident]bool
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, isLit := n.(*ast.CompositeLit); isLit {
				for _, el := range lit.Elts {
					if kv, isKV := el.(*ast.KeyValueExpr); isKV {
						if key, isIdent := kv.Key.(*ast.Ident); isIdent {
							if compositeKeys == nil {
								compositeKeys = make(map[*ast.Ident]bool)
							}
							compositeKeys[key] = true
						}
					}
				}
			}
			ident, isIdent := n.(*ast.Ident)
			if !isIdent || sanctioned[ident] || compositeKeys[ident] {
				return true
			}
			obj := pass.TypesInfo.Uses[ident]
			if obj == nil {
				return true
			}
			firstAtomic, isAtomicVar := atomicVars[obj]
			if !isAtomicVar {
				return true
			}
			pass.Reportf(ident.Pos(),
				"%s is accessed with sync/atomic (e.g. at %s) but read/written plainly here: mixed access is a data race — use sync/atomic everywhere or an atomic.%s-style wrapper",
				ident.Name, pass.Position(firstAtomic), wrapperFor(obj))
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function (LoadInt64, StoreUint32, AddUint64, SwapPointer,
// CompareAndSwapInt32, ...). Wrapper-type methods never take an address
// argument and are inherently safe.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn, isFn := analysis.CalleeObject(info, call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

// addressedVar resolves &expr's operand to the underlying field or
// variable object, returning also the identifier that names it (for the
// sanctioned-use set).
func addressedVar(info *types.Info, expr ast.Expr) (types.Object, *ast.Ident) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, isVar := info.Uses[e].(*types.Var); isVar {
			return v, e
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj(), e.Sel
		}
		if v, isVar := info.Uses[e.Sel].(*types.Var); isVar {
			return v, e.Sel // qualified package-level var
		}
	}
	return nil, nil
}

// wrapperFor names the atomic wrapper type matching the variable's
// underlying type, for the diagnostic's suggestion.
func wrapperFor(obj types.Object) string {
	basic, isBasic := obj.Type().Underlying().(*types.Basic)
	if !isBasic {
		return "Pointer"
	}
	switch basic.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int, types.Int64:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint, types.Uint64, types.Uintptr:
		return "Uint64"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}
