package counters

import "sync/atomic"

type Counter struct {
	n     int64
	plain int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Read() int64 {
	return atomic.LoadInt64(&c.n)
}

// A plain read races with Inc: torn or stale on weak memory orders.
func (c *Counter) Peek() int64 {
	return c.n // want `n is accessed with sync/atomic`
}

// Plain writes race too.
func (c *Counter) Reset() {
	c.n = 0 // want `n is accessed with sync/atomic`
}

// Fields never touched by sync/atomic are unrestricted.
func (c *Counter) Bump() {
	c.plain++
}

// Composite-literal keys zero-initialize before the value is shared.
func New() *Counter {
	return &Counter{n: 0, plain: 0}
}

var flag uint32

func set() {
	atomic.StoreUint32(&flag, 1)
}

// Package-level variables get the same all-or-nothing rule.
func cleared() bool {
	return flag == 0 // want `flag is accessed with sync/atomic`
}
