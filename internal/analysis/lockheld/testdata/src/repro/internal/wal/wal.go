// Package wal is a fixture stub whose method full names match the real
// repro/internal/wal, so the policy.Blocking and policy.HeldExceptions
// tables key against it exactly as they do on the tree.
package wal

type WAL struct{}

func (w *WAL) Append(rec []byte) (uint64, error)     { return 0, nil }
func (w *WAL) AppendAt(seq uint64, rec []byte) error { return nil }
func (w *WAL) Commit() error                         { return nil }
