// Package transport is a fixture stub: the Server.mu lock class resolves
// to "repro/internal/transport.Server.mu", the exact key the reviewed
// policy.HeldExceptions entries carry.
package transport

import (
	"sync"

	"repro/internal/wal"
)

type Server struct {
	mu  sync.Mutex
	wal *wal.WAL
	seq uint64
}

// The buffered WAL append under Server.mu is the log-before-mutate
// durability design — the reviewed HeldExceptions entry, so no finding.
func (s *Server) apply(rec []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq, _ := s.wal.Append(rec)
	s.seq = seq
}

// Commit fsyncs; holding the session lock across it stalls every client.
func (s *Server) applyAndFsync(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.wal.Append(rec); err != nil {
		return err
	}
	return s.wal.Commit() // want `Commit blocks on the WAL fsync frontier while Server\.mu is held`
}

// Fsync after release is the correct shape.
func (s *Server) applyThenFsync(rec []byte) error {
	s.mu.Lock()
	_, err := s.wal.Append(rec)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.wal.Commit()
}
