package held

import (
	"log/slog"
	"time"
)

// A select with a default never blocks: it is the sanctioned way to poll
// a channel inside a critical section.
func (q *Queue) poll() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		q.items = append(q.items, v)
		return true
	default:
		return false
	}
}

// Structured logging under a lock is the allowed exception
// (policy.AllowedUnderLock): slog handlers write to a local fd.
func (q *Queue) logged(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	slog.Info("pushed", "v", v)
	q.mu.Unlock()
}

// Blocking after the unlock is the correct shape.
func (q *Queue) sleepAfter() {
	q.mu.Lock()
	q.items = nil
	q.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// A closure handed to another goroutine does not inherit the spawner's
// held set.
func (q *Queue) spawn() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}
