package held

import (
	"sync"
	"time"
)

type Queue struct {
	mu    sync.Mutex
	items []int
	ch    chan int
}

// Sleeping under the lock convoys every other acquirer.
func (q *Queue) slowPush(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want `Sleep sleeps while Queue\.mu is held`
	q.items = append(q.items, v)
}

// A channel send can block until a receiver shows up.
func (q *Queue) pushChan(v int) {
	q.mu.Lock()
	q.ch <- v // want `channel send while holding Queue\.mu`
	q.mu.Unlock()
}

// So can a receive.
func (q *Queue) popChan() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want `channel receive while holding Queue\.mu`
}

// A select without a default parks the goroutine with the lock held.
func (q *Queue) waitEither(done chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `select with no default while holding Queue\.mu`
	case <-q.ch:
	case <-done:
	}
}
