package lockheld

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/lockfix/held",       // intrinsic channel/select/sleep positives and negatives
		"repro/internal/transport", // policy.Blocking facts + the reviewed HeldExceptions entry
	)
}
