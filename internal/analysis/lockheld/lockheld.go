// Package lockheld enforces the critical-section latency discipline: no
// blocking operation — network round trip, WAL fsync or long-poll,
// channel send/receive, select without default, time.Sleep, barrier
// wait — while any mutex is held. A blocking call under a lock turns one
// slow peer (or one slow disk) into a stall for every goroutine that
// needs the lock; on the report fast path that is the difference between
// shedding gracefully and convoying.
//
// What counts as blocking is the curated policy.Blocking table (callee
// full name → why) plus the intrinsically blocking channel operations the
// walker sees syntactically. Two escape valves are deliberate and
// reviewed, both encoded in internal/analysis/policy:
//
//   - structured logging under a lock is allowed (policy.AllowedUnderLock):
//     slog handlers write to a local fd and are not worth contorting
//     critical sections around;
//   - the (callee, lock) pairs in policy.HeldExceptions, i.e. the WAL
//     append under transport.Server.mu — the log-before-mutate durability
//     design, where the append only buffers and the fsync happens after
//     the lock is released.
//
// Test files are exempt: tests block under locks deliberately to
// provoke the races the real code must survive.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/lockset"
	"repro/internal/analysis/policy"
)

// Analyzer is the lockheld check.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "no blocking call (network I/O, WAL fsync/long-poll, channel send/recv, select, time.Sleep) " +
		"while a mutex is held; the allowed log-under-lock exceptions live in internal/analysis/policy.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if policy.IsTestFile(pass.FileName(f)) {
			continue
		}
		for _, d := range f.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			lockset.WalkFunc(pass.TypesInfo, fd.Body, lockset.Callbacks{
				Blocking: func(held []lockset.Held, pos token.Pos, what string) {
					if len(held) == 0 {
						return
					}
					h := held[len(held)-1]
					pass.Reportf(pos,
						"%s while holding %s (acquired at %s): a blocked critical section stalls every other acquirer — do this outside the lock",
						what, h.Name, pass.Position(h.Pos))
				},
				Call: func(held []lockset.Held, call *ast.CallExpr) {
					if len(held) == 0 {
						return
					}
					callee, isFn := analysis.CalleeObject(pass.TypesInfo, call).(*types.Func)
					if !isFn {
						return
					}
					if pkg := callee.Pkg(); pkg != nil && policy.AllowedUnderLock(pkg.Path()) {
						return
					}
					full := callee.FullName()
					why, blocking := policy.Blocking[full]
					if !blocking {
						return
					}
					allowed := policy.HeldExceptions[full]
					for _, h := range held {
						if allowed[h.ID] {
							continue
						}
						pass.Reportf(call.Pos(),
							"%s %s while %s is held (acquired at %s): a blocked critical section stalls every other acquirer — move it outside the lock or add a reviewed policy.HeldExceptions entry",
							callee.Name(), why, h.Name, pass.Position(h.Pos))
						return // one report per call is enough
					}
				},
			})
		}
	}
	return nil, nil
}
