// Package ctxflow forbids context.Background() and context.TODO() in the
// protocol packages (transport, federated): request-path handlers and
// clients must thread the caller's context. A fabricated root context
// detaches the call from cancellation and deadlines, which is exactly how
// session-TTL enforcement (PR 1) and graceful fednumd drain (SIGTERM)
// silently stop propagating — a retry loop on a Background context keeps
// hammering a server that is trying to shut down. Package main owns its
// lifecycle and tests own their harness, so both are exempt.
package ctxflow

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/policy"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO in request-path (protocol) packages. " +
		"Thread the caller's context so cancellation and session deadlines propagate.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if policy.Classify(pass.PkgPath) != policy.Protocol {
		return nil, nil
	}
	for _, f := range pass.Files {
		if policy.IsTestFile(pass.FileName(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := analysis.CalleeObject(pass.TypesInfo, call)
			for _, name := range [...]string{"Background", "TODO"} {
				if analysis.IsPkgFunc(obj, "context", name) {
					pass.Reportf(call.Pos(), "context.%s in request-path code detaches cancellation and session deadlines: accept and thread the caller's ctx", name)
				}
			}
			return true
		})
	}
	return nil, nil
}
