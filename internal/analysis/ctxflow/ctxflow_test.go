package ctxflow

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/internal/transport", // positives: Background/TODO on the request path; negatives: threading, test file
		"repro/cmd/fednumd",        // negative: package main
		"repro/internal/wal",       // negative: harness-class background work
	)
}
