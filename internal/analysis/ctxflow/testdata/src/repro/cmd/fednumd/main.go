// Command fednumd fixture: package main owns the process lifecycle and may
// create root contexts.
package main

import "context"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = ctx
}
