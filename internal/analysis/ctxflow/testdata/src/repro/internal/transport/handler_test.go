// Tests own their harness lifecycle: root contexts are fine here.
package transport

import (
	"context"
	"testing"
)

func TestRootContextAllowed(t *testing.T) {
	ctx := context.Background()
	if ctx == nil {
		t.Fatal("impossible")
	}
}
