// Package transport fixture: protocol-class request-path code where
// fabricated root contexts are banned.
package transport

import (
	"context"
	"net/http"
	"time"
)

// Client mirrors the real participant client shape.
type Client struct{}

// Report detaches from the caller — both forms are flagged.
func (c *Client) Report(body []byte) error {
	ctx := context.Background() // want `context.Background in request-path code detaches cancellation`
	_ = ctx
	todo := context.TODO() // want `context.TODO in request-path code detaches cancellation`
	_ = todo
	return nil
}

// ReportCtx threads the caller's context: the required shape.
func (c *Client) ReportCtx(ctx context.Context, body []byte) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return nil
}

// Handle derives from the request, never from a root.
func Handle(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
}
