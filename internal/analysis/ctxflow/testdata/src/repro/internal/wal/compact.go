// Package wal fixture: harness-class background work is outside ctxflow's
// request-path scope.
package wal

import "context"

// Compact runs from a background goroutine the daemon owns, not from a
// request; a root context is legitimate.
func Compact() error {
	ctx := context.Background()
	<-ctx.Done()
	return ctx.Err()
}
