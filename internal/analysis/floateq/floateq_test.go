package floateq

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/internal/core", // positives + sentinel/NaN/test-file negatives
		"repro/internal/wal",  // negative: harness class is out of scope
	)
}
