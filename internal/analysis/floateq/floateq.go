// Package floateq flags == and != between floating-point operands in the
// estimator packages (core, stats, ldp, distdp, quantile, ...). The paper's
// estimators are exquisitely sensitive to sampling-probability arithmetic;
// an exact comparison that silently never fires (or fires spuriously after
// a refactor reorders operations) corrupts bit allocations and privacy
// accounting without failing any test. Compare against an explicit
// tolerance (stats.ApproxEqual) instead.
//
// Two idioms stay legal because they are exact by construction:
//
//   - comparison against a literal 0, the pervasive "field unset, apply
//     default" sentinel on config structs (0 is exactly representable and
//     assigned, never computed);
//   - x != x (or x == x), the standard NaN probe.
//
// Test files are exempt: reproducibility tests intentionally assert
// bit-exact outputs of the seeded deterministic pipeline.
package floateq

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/policy"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag floating-point == and != in estimator packages. " +
		"Use stats.ApproxEqual or an explicit tolerance; literal-0 sentinel checks and the x != x NaN probe are allowed.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if policy.Classify(pass.PkgPath) != policy.Estimator {
		return nil, nil
	}
	for _, f := range pass.Files {
		if policy.IsTestFile(pass.FileName(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo, be.X) || !isFloat(pass.TypesInfo, be.Y) {
				return true
			}
			if isZeroLiteral(pass.TypesInfo, be.X) || isZeroLiteral(pass.TypesInfo, be.Y) {
				return true
			}
			if sameExpr(be.X, be.Y) { // NaN probe
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison in estimator code: use stats.ApproxEqual or an explicit tolerance (exact equality silently misbehaves as arithmetic is refactored)", be.Op)
			return true
		})
	}
	return nil, nil
}

// isFloat reports whether the expression's type is (an alias or named type
// over) float32 or float64.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroLiteral reports whether the expression is a compile-time constant
// equal to zero (covers 0, 0.0, and named zero constants).
func isZeroLiteral(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// sameExpr reports whether two expressions are syntactically identical,
// which for pure operands makes ==/!= the well-defined NaN probe.
func sameExpr(a, b ast.Expr) bool {
	return render(a) == render(b)
}

func render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}
