// Package wal fixture: harness-class code is outside floateq's scope.
package wal

// SameRate compares floats exactly; the durability layer is not estimator
// code, so floateq stays silent here.
func SameRate(a, b float64) bool { return a == b }
