// Package core fixture: estimator code where float equality is forbidden
// outside the allowed idioms.
package core

import "math"

// Config mimics the paper-parameter structs whose zero value means "apply
// the default".
type Config struct {
	Gamma float64
	Alpha float64
}

// Defaults shows the legal exact-zero sentinel checks.
func (c *Config) Defaults() {
	if c.Gamma == 0 { // literal zero sentinel: allowed
		c.Gamma = 0.5
	}
	if c.Alpha != 0.0 { // literal zero, spelled as a float: allowed
		return
	}
	c.Alpha = 1.0 / 3.0
}

// Compare holds the forbidden comparisons.
func Compare(a, b float64, probs []float64) bool {
	if a == b { // want `floating-point == comparison in estimator code`
		return true
	}
	if probs[0] != probs[1] { // want `floating-point != comparison in estimator code`
		return false
	}
	if a == 1 { // want `floating-point == comparison in estimator code`
		return true
	}
	var f32 float32
	return float32(b) == f32 // want `floating-point == comparison in estimator code`
}

// IsNaN shows the legal self-comparison probe.
func IsNaN(x float64) bool {
	return x != x // NaN probe: allowed
}

// Ints shows that integer equality is out of scope.
func Ints(n, m int) bool { return n == m }

// MathUse keeps the math import honest.
func MathUse(x float64) float64 { return math.Abs(x) }
