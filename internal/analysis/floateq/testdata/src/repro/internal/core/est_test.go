// Reproducibility tests may assert bit-exact floats: the deterministic
// pipeline guarantees them, and the analyzer exempts test files.
package core

import "testing"

func TestExact(t *testing.T) {
	if got, want := 0.25*4, 1.0; got != want {
		t.Fatalf("got %v want %v", got, want)
	}
}
