// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repository's linters (cmd/fedlint) need no network access or vendored
// dependencies. It provides the Analyzer/Pass/Diagnostic vocabulary, a
// `go vet -vettool` unitchecker driver speaking the toolchain's vet.cfg
// protocol (unitchecker.go), and a fixture test harness
// (package checktest) mirroring analysistest's `// want` convention.
//
// The scope is deliberately smaller than x/tools: no cross-package facts
// (fedlint's invariants are all intra-package given type information), no
// result dependencies between analyzers, and no SSA. If the repository ever
// vendors x/tools, each analyzer ports mechanically: the Pass surface here
// is a subset of the real one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name must be a valid identifier; it
// becomes the -<name> toggle flag on the fedlint command line.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description: first sentence states the
	// invariant, the rest says why it exists.
	Doc string
	// Run applies the check to one package and reports diagnostics via
	// pass.Report. The returned value is ignored by this driver (kept for
	// x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for every file in Files.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's recorded facts for Files.
	TypesInfo *types.Info
	// PkgPath is the canonical import path as the build system sees it.
	// For test variants this keeps the raw form (e.g. "p [p.test]" or
	// "p_test"); use policy.Normalize before classifying.
	PkgPath string
	// Report delivers one diagnostic. The driver fills it in.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos is where the problem starts.
	Pos token.Pos
	// End optionally marks the end of the offending range.
	End token.Pos
	// Message states the problem and what to do instead.
	Message string
	// SuggestedFixes, when non-empty, carry mechanical rewrites that
	// resolve the diagnostic; `fedlint -fix` applies the first one.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained mechanical rewrite.
type SuggestedFix struct {
	// Message describes the rewrite (imperative: "replace x with y").
	Message string
	// TextEdits are the non-overlapping edits that implement it.
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
