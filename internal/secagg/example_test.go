package secagg_test

import (
	"fmt"

	"repro/internal/secagg"
)

// Five clients sum their vectors without revealing any individual input;
// client 2 drops out mid-round and the Shamir recovery removes its
// orphaned masks.
func ExampleProtocol_SumUints() {
	p, _ := secagg.New(secagg.Config{NumClients: 5, Threshold: 3, VecLen: 2})
	inputs := [][]uint64{
		{1, 10},
		{2, 20},
		{3, 30}, // drops out
		{4, 40},
		{5, 50},
	}
	sums, _ := p.SumUints(inputs, []int{2})
	fmt.Println(sums)
	// Output:
	// [12 120]
}
