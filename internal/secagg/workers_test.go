package secagg

import (
	"reflect"
	"testing"
)

// TestWorkersInvariant checks the parallel mask fold: the same protocol
// instance (same deterministic entropy) produces identical masked inputs
// and identical aggregates at 1 and 8 workers, with and without dropouts.
func TestWorkersInvariant(t *testing.T) {
	const clients, vecLen = 12, 16
	inputs := make([][]uint64, clients)
	for i := range inputs {
		inputs[i] = make([]uint64, vecLen)
		for k := range inputs[i] {
			inputs[i][k] = uint64(i*vecLen+k) % 7
		}
	}
	run := func(workers int, dropouts []int) []uint64 {
		t.Helper()
		p, err := New(Config{
			NumClients: clients, Threshold: clients / 2, VecLen: vecLen,
			Entropy: newTestEntropy(11), Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := p.SumUints(inputs, dropouts)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	for _, dropouts := range [][]int{nil, {2, 7, 9}} {
		serial := run(1, dropouts)
		parallel := run(8, dropouts)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("dropouts %v: sums differ between 1 and 8 workers:\n  %v\n  %v",
				dropouts, serial, parallel)
		}
	}
}
