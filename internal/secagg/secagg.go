// Package secagg simulates a Bonawitz-style secure-aggregation protocol:
// clients submit additively masked vectors and the server learns only their
// sum. The paper (§3.3) uses secure aggregation so that the server "knows
// the sum of the input values, without revealing anything further about the
// inputs of individual clients"; bit-pushing layers on top by aggregating
// per-bit sums and counts.
//
// Protocol shape. Each pair of clients (i, j) holds a shared pairwise seed;
// client i < j adds PRG(s_ij) to its vector and client j subtracts it, so
// pairwise masks cancel in the sum. Each client also adds a self mask
// PRG(b_i). On completion the server unmasks: for every surviving client it
// reconstructs b_i from Shamir shares held by other clients and subtracts
// the self mask; for every dropped client it reconstructs that client's
// pairwise seeds and cancels the orphaned pairwise masks — exactly the
// double-masking recovery of Bonawitz et al. (CCS 2017).
//
// Simulation caveat (see DESIGN.md §2): key agreement is replaced by a
// trusted dealer that hands both endpoints the same random pairwise seed.
// Seeds are drawn from crypto/rand (or an injected entropy stream for
// reproducible tests) and masks are expanded with an AES-CTR PRG keyed by
// the shared seed, so the masking itself matches the Bonawitz construction;
// only the key-agreement step remains simulated.
package secagg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/field"
	"repro/internal/shamir"
)

// Errors returned by the protocol.
var (
	ErrConfig    = errors.New("secagg: invalid configuration")
	ErrSurvivors = errors.New("secagg: fewer survivors than recovery threshold")
	ErrInput     = errors.New("secagg: bad input")
)

// Config parametrizes a secure-aggregation session.
type Config struct {
	NumClients int // total enrolled clients, >= 2
	Threshold  int // Shamir threshold for seed recovery, in [1, NumClients]
	VecLen     int // length of the aggregated vectors, >= 1
	// Entropy is the dealer's randomness source for seeds and Shamir
	// coefficients; nil means crypto/rand.Reader. Inject a deterministic
	// stream only to reproduce a protocol instance in tests — mask and
	// share material must otherwise come from the system CSPRNG
	// (fedlint/randsource enforces this for the implementation itself).
	Entropy io.Reader
	// Workers bounds the goroutines expanding AES-CTR masks during
	// MaskedInput and Aggregate. Zero means runtime.GOMAXPROCS(0); 1
	// forces serial expansion. Each mask is a pure function of its seed
	// and the fold is exact mod-p arithmetic (commutative and
	// associative), so the aggregate is identical at any worker count.
	Workers int
}

// Protocol is one configured secure-aggregation session. It plays the
// trusted dealer (setup), the clients (masking), and the server (unmasking);
// tests exercise each role separately.
type Protocol struct {
	cfg     Config
	clients []*client
}

// client holds one participant's secret state.
type client struct {
	id        int
	selfSeed  uint64
	pairSeeds map[int]uint64 // peer id -> seed shared with that peer
	// Shares this client holds of OTHER clients' secrets, indexed by owner.
	heldSelfShares map[int]shamir.Share
	heldPairShares map[int]map[int]shamir.Share // owner -> peer -> share of s_{owner,peer}
}

// New runs the (simulated) setup phase: pairwise seed agreement, self-seed
// generation, and Shamir distribution of both kinds of seeds.
func New(cfg Config) (*Protocol, error) {
	if cfg.NumClients < 2 {
		return nil, fmt.Errorf("%w: NumClients=%d (need >= 2)", ErrConfig, cfg.NumClients)
	}
	if cfg.Threshold < 1 || cfg.Threshold > cfg.NumClients {
		return nil, fmt.Errorf("%w: Threshold=%d with %d clients", ErrConfig, cfg.Threshold, cfg.NumClients)
	}
	if cfg.VecLen < 1 {
		return nil, fmt.Errorf("%w: VecLen=%d", ErrConfig, cfg.VecLen)
	}
	dealer := cfg.Entropy
	if dealer == nil {
		dealer = rand.Reader
	}
	n := cfg.NumClients
	p := &Protocol{cfg: cfg, clients: make([]*client, n)}
	for i := range p.clients {
		seed, err := drawSeed(dealer)
		if err != nil {
			return nil, err
		}
		p.clients[i] = &client{
			id:             i,
			selfSeed:       seed,
			pairSeeds:      make(map[int]uint64, n-1),
			heldSelfShares: make(map[int]shamir.Share, n-1),
			heldPairShares: make(map[int]map[int]shamir.Share, n-1),
		}
	}
	// Pairwise seed agreement (dealer-simulated key agreement).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s, err := drawSeed(dealer)
			if err != nil {
				return nil, err
			}
			p.clients[i].pairSeeds[j] = s
			p.clients[j].pairSeeds[i] = s
		}
	}
	// Share distribution: every client splits its self seed and each of its
	// pairwise seeds among all n clients (holding its own share too, which
	// the server never requests for the owner itself).
	for _, owner := range p.clients {
		shares, err := shamir.Split(field.Reduce(owner.selfSeed), cfg.Threshold, n, dealer)
		if err != nil {
			return nil, err
		}
		for i, sh := range shares {
			p.clients[i].heldSelfShares[owner.id] = sh
		}
		for peer, seed := range owner.pairSeeds {
			shares, err := shamir.Split(field.Reduce(seed), cfg.Threshold, n, dealer)
			if err != nil {
				return nil, err
			}
			for i, sh := range shares {
				m := p.clients[i].heldPairShares[owner.id]
				if m == nil {
					m = make(map[int]shamir.Share)
					p.clients[i].heldPairShares[owner.id] = m
				}
				m[peer] = sh
			}
		}
	}
	return p, nil
}

// Config returns the session configuration.
func (p *Protocol) Config() Config { return p.cfg }

// drawSeed reads one 64-bit seed from the dealer's entropy source.
func drawSeed(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("secagg: drawing seed: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// zeroReader yields an endless stream of zero bytes; XORing the AES-CTR
// keystream into it exposes the raw keystream through io.Reader.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	clear(p)
	return len(p), nil
}

// prgKeyLabel domain-separates the mask-expansion PRG key derivation.
const prgKeyLabel = "repro/secagg mask prg v1"

// expand expands a seed into VecLen field elements with an AES-256-CTR PRG
// keyed by SHA-256(label || seed). The expansion is a pure function of the
// seed — both endpoints of a pair derive the identical mask so pairwise
// masks cancel in the sum, and dropout recovery regenerates the same
// stream from the Shamir-reconstructed seed. Seeds are reduced into the
// field at sharing time, so the key is derived from the reduced value.
func (p *Protocol) expand(seed uint64) []field.Element {
	out := make([]field.Element, p.cfg.VecLen)
	p.expandInto(seed, out)
	return out
}

// expandInto is expand writing into a caller-owned buffer of length VecLen,
// so workers can expand many masks without per-mask garbage.
func (p *Protocol) expandInto(seed uint64, out []field.Element) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(field.Reduce(seed)))
	h := sha256.New()
	h.Write([]byte(prgKeyLabel))
	h.Write(buf[:])
	block, err := aes.NewCipher(h.Sum(nil))
	if err != nil {
		panic("secagg: AES key setup: " + err.Error()) // 32-byte key; unreachable
	}
	stream := cipher.StreamReader{
		S: cipher.NewCTR(block, make([]byte, aes.BlockSize)),
		R: zeroReader{},
	}
	for i := range out {
		e, err := field.RandElement(stream)
		if err != nil {
			panic("secagg: PRG read: " + err.Error()) // keystream never errors
		}
		out[i] = e
	}
}

// maskTerm names one PRG expansion to fold into an aggregate: the seed and
// whether the mask is subtracted.
type maskTerm struct {
	seed uint64
	sub  bool
}

func (p *Protocol) workers() int {
	if p.cfg.Workers > 0 {
		return p.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// addMasks folds every term's expanded mask into dst, fanning the
// expansions across workers. Each worker folds its strided share of the
// terms into a private partial vector and the partials are combined
// serially; because field addition is exact and commutative, the result is
// bit-identical to the serial loop at any worker count.
func (p *Protocol) addMasks(dst []field.Element, terms []maskTerm) {
	workers := p.workers()
	if workers > len(terms) {
		workers = len(terms)
	}
	if workers <= 1 {
		buf := make([]field.Element, p.cfg.VecLen)
		for _, t := range terms {
			p.expandInto(t.seed, buf)
			if t.sub {
				field.SubVec(dst, buf)
			} else {
				field.AddVec(dst, buf)
			}
		}
		return
	}
	partials := make([][]field.Element, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := make([]field.Element, p.cfg.VecLen)
			buf := make([]field.Element, p.cfg.VecLen)
			for ti := w; ti < len(terms); ti += workers {
				p.expandInto(terms[ti].seed, buf)
				if terms[ti].sub {
					field.SubVec(part, buf)
				} else {
					field.AddVec(part, buf)
				}
			}
			partials[w] = part
		}(w)
	}
	wg.Wait()
	for _, part := range partials {
		field.AddVec(dst, part)
	}
}

// MaskedInput computes client id's masked submission for the given input
// vector. Inputs must already be field elements (callers encode counts or
// fixed-point values, which are far below the 2^61-1 modulus).
func (p *Protocol) MaskedInput(id int, input []field.Element) ([]field.Element, error) {
	if id < 0 || id >= p.cfg.NumClients {
		return nil, fmt.Errorf("%w: client id %d", ErrInput, id)
	}
	if len(input) != p.cfg.VecLen {
		return nil, fmt.Errorf("%w: vector length %d, want %d", ErrInput, len(input), p.cfg.VecLen)
	}
	c := p.clients[id]
	out := make([]field.Element, p.cfg.VecLen)
	for i, v := range input {
		if v >= field.P {
			return nil, fmt.Errorf("%w: element %d out of field range", ErrInput, i)
		}
		out[i] = v
	}
	terms := make([]maskTerm, 0, len(c.pairSeeds)+1)
	terms = append(terms, maskTerm{seed: c.selfSeed})
	for peer, seed := range c.pairSeeds {
		terms = append(terms, maskTerm{seed: seed, sub: c.id > peer})
	}
	p.addMasks(out, terms)
	return out, nil
}

// Aggregate plays the server: given masked submissions from the surviving
// clients (keyed by client id), it recovers the necessary seeds from the
// survivors' shares and returns the sum of the survivors' original inputs.
//
// Dropped clients are precisely the enrolled ids absent from masked.
func (p *Protocol) Aggregate(masked map[int][]field.Element) ([]field.Element, error) {
	if len(masked) < p.cfg.Threshold {
		return nil, fmt.Errorf("%w: %d survivors, threshold %d", ErrSurvivors, len(masked), p.cfg.Threshold)
	}
	survivors := make([]int, 0, len(masked))
	for id, vec := range masked {
		if id < 0 || id >= p.cfg.NumClients {
			return nil, fmt.Errorf("%w: unknown client id %d", ErrInput, id)
		}
		if len(vec) != p.cfg.VecLen {
			return nil, fmt.Errorf("%w: client %d vector length %d", ErrInput, id, len(vec))
		}
		survivors = append(survivors, id)
	}
	sort.Ints(survivors)
	surviving := make(map[int]bool, len(survivors))
	for _, id := range survivors {
		surviving[id] = true
	}

	sum := make([]field.Element, p.cfg.VecLen)
	for _, id := range survivors {
		field.AddVec(sum, masked[id])
	}
	// Remove self masks of survivors: reconstruct b_i from shares held by
	// OTHER surviving clients. Seed recovery (Shamir) stays serial; the
	// expensive PRG expansions are collected and folded across workers.
	terms := make([]maskTerm, 0, len(survivors))
	for _, id := range survivors {
		seed, err := p.recoverSelfSeed(id, survivors)
		if err != nil {
			return nil, err
		}
		terms = append(terms, maskTerm{seed: uint64(seed), sub: true})
	}
	// Cancel orphaned pairwise masks of dropped clients.
	for d := 0; d < p.cfg.NumClients; d++ {
		if surviving[d] {
			continue
		}
		for _, j := range survivors {
			seed, err := p.recoverPairSeed(d, j, survivors)
			if err != nil {
				return nil, err
			}
			// Survivor j added +PRG(s_jd) when j < d (remove it), and
			// subtracted PRG(s_dj) when j > d (add it back).
			terms = append(terms, maskTerm{seed: uint64(seed), sub: j < d})
		}
	}
	p.addMasks(sum, terms)
	return sum, nil
}

// recoverSelfSeed reconstructs client owner's self seed from shares held by
// surviving clients other than the owner.
func (p *Protocol) recoverSelfSeed(owner int, survivors []int) (field.Element, error) {
	shares := make([]shamir.Share, 0, len(survivors))
	for _, id := range survivors {
		if id == owner {
			continue
		}
		if sh, ok := p.clients[id].heldSelfShares[owner]; ok {
			shares = append(shares, sh)
		}
	}
	// The owner's own share is admissible too (the owner is alive).
	if sh, ok := p.clients[owner].heldSelfShares[owner]; ok {
		shares = append(shares, sh)
	}
	s, err := shamir.Reconstruct(shares, p.cfg.Threshold)
	if err != nil {
		return 0, fmt.Errorf("secagg: recovering self seed of client %d: %w", owner, err)
	}
	return s, nil
}

// recoverPairSeed reconstructs the pairwise seed s_{owner,peer} of a dropped
// owner from shares held by survivors.
func (p *Protocol) recoverPairSeed(owner, peer int, survivors []int) (field.Element, error) {
	shares := make([]shamir.Share, 0, len(survivors))
	for _, id := range survivors {
		if m, ok := p.clients[id].heldPairShares[owner]; ok {
			if sh, ok := m[peer]; ok {
				shares = append(shares, sh)
			}
		}
	}
	s, err := shamir.Reconstruct(shares, p.cfg.Threshold)
	if err != nil {
		return 0, fmt.Errorf("secagg: recovering pair seed (%d,%d): %w", owner, peer, err)
	}
	return s, nil
}

// SumUints aggregates plain uint64 inputs (e.g. bit counts) through the
// protocol: it masks each survivor's vector, aggregates, and returns the
// sums as uint64. dropouts lists enrolled clients that never submit.
// inputs must have one vector per enrolled client; vectors of dropped
// clients are ignored.
func (p *Protocol) SumUints(inputs [][]uint64, dropouts []int) ([]uint64, error) {
	if len(inputs) != p.cfg.NumClients {
		return nil, fmt.Errorf("%w: %d input vectors for %d clients", ErrInput, len(inputs), p.cfg.NumClients)
	}
	dropped := make(map[int]bool, len(dropouts))
	for _, d := range dropouts {
		if d < 0 || d >= p.cfg.NumClients {
			return nil, fmt.Errorf("%w: dropout id %d", ErrInput, d)
		}
		dropped[d] = true
	}
	masked := make(map[int][]field.Element, p.cfg.NumClients-len(dropped))
	for id, in := range inputs {
		if dropped[id] {
			continue
		}
		vec := make([]field.Element, len(in))
		for i, v := range in {
			vec[i] = field.Reduce(v)
		}
		m, err := p.MaskedInput(id, vec)
		if err != nil {
			return nil, err
		}
		masked[id] = m
	}
	sum, err := p.Aggregate(masked)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(sum))
	copy(out, sum)
	return out, nil
}
