package secagg

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/frand"
)

// testEntropy is a deterministic dealer entropy stream (SplitMix64 output)
// so protocol instances are reproducible in tests; production callers leave
// Config.Entropy nil and get crypto/rand.
type testEntropy struct{ s uint64 }

func newTestEntropy(seed uint64) *testEntropy { return &testEntropy{s: seed} }

func (e *testEntropy) Read(p []byte) (int, error) {
	for i := range p {
		e.s += 0x9e3779b97f4a7c15
		z := e.s
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		p[i] = byte(z)
	}
	return len(p), nil
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{NumClients: 1, Threshold: 1, VecLen: 1},
		{NumClients: 3, Threshold: 0, VecLen: 1},
		{NumClients: 3, Threshold: 4, VecLen: 1},
		{NumClients: 3, Threshold: 2, VecLen: 0},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("New(%+v) err = %v, want ErrConfig", cfg, err)
		}
	}
}

func TestSumNoDropouts(t *testing.T) {
	p, err := New(Config{NumClients: 5, Threshold: 3, VecLen: 4, Entropy: newTestEntropy(1)})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]uint64{
		{1, 0, 1, 0},
		{0, 1, 1, 0},
		{1, 1, 0, 0},
		{0, 0, 0, 1},
		{1, 0, 1, 1},
	}
	got, err := p.SumUints(inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 2, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestSumWithDropouts(t *testing.T) {
	p, err := New(Config{NumClients: 6, Threshold: 3, VecLen: 3, Entropy: newTestEntropy(2)})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]uint64{
		{10, 0, 0},
		{0, 10, 0},
		{0, 0, 10},
		{1, 1, 1},
		{2, 2, 2},
		{3, 3, 3},
	}
	// Clients 1 and 4 drop out mid-round.
	got, err := p.SumUints(inputs, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{14, 4, 14}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestSumAllButThresholdDrop(t *testing.T) {
	p, err := New(Config{NumClients: 5, Threshold: 2, VecLen: 1, Entropy: newTestEntropy(3)})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]uint64{{1}, {2}, {3}, {4}, {5}}
	got, err := p.SumUints(inputs, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 { // clients 1 and 3 survive: 2 + 4
		t.Fatalf("sum = %d, want 6", got[0])
	}
}

func TestTooManyDropouts(t *testing.T) {
	p, err := New(Config{NumClients: 4, Threshold: 3, VecLen: 1, Entropy: newTestEntropy(4)})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]uint64{{1}, {2}, {3}, {4}}
	_, err = p.SumUints(inputs, []int{0, 1})
	if !errors.Is(err, ErrSurvivors) {
		t.Fatalf("err = %v, want ErrSurvivors", err)
	}
}

func TestMaskedInputHidesValue(t *testing.T) {
	p, err := New(Config{NumClients: 3, Threshold: 2, VecLen: 8, Entropy: newTestEntropy(5)})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]field.Element, 8) // all zeros
	masked, err := p.MaskedInput(0, input)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range masked {
		if v == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("masked zero vector still mostly zero: %v", masked)
	}
}

func TestMaskedInputsDifferAcrossClients(t *testing.T) {
	p, err := New(Config{NumClients: 3, Threshold: 2, VecLen: 4, Entropy: newTestEntropy(6)})
	if err != nil {
		t.Fatal(err)
	}
	in := []field.Element{7, 7, 7, 7}
	a, _ := p.MaskedInput(0, in)
	b, _ := p.MaskedInput(1, in)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("two clients produced identical masked vectors for same input")
	}
}

func TestMaskedInputValidation(t *testing.T) {
	p, err := New(Config{NumClients: 3, Threshold: 2, VecLen: 2, Entropy: newTestEntropy(7)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MaskedInput(-1, []field.Element{1, 2}); !errors.Is(err, ErrInput) {
		t.Errorf("negative id: err = %v", err)
	}
	if _, err := p.MaskedInput(3, []field.Element{1, 2}); !errors.Is(err, ErrInput) {
		t.Errorf("id out of range: err = %v", err)
	}
	if _, err := p.MaskedInput(0, []field.Element{1}); !errors.Is(err, ErrInput) {
		t.Errorf("short vector: err = %v", err)
	}
	if _, err := p.MaskedInput(0, []field.Element{field.P, 0}); !errors.Is(err, ErrInput) {
		t.Errorf("out-of-field element: err = %v", err)
	}
}

func TestAggregateValidation(t *testing.T) {
	p, err := New(Config{NumClients: 3, Threshold: 1, VecLen: 2, Entropy: newTestEntropy(8)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Aggregate(map[int][]field.Element{9: {1, 2}}); !errors.Is(err, ErrInput) {
		t.Errorf("unknown id: err = %v", err)
	}
	if _, err := p.Aggregate(map[int][]field.Element{0: {1}}); !errors.Is(err, ErrInput) {
		t.Errorf("short vector: err = %v", err)
	}
}

func TestSumUintsValidation(t *testing.T) {
	p, err := New(Config{NumClients: 3, Threshold: 2, VecLen: 1, Entropy: newTestEntropy(9)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SumUints([][]uint64{{1}}, nil); !errors.Is(err, ErrInput) {
		t.Errorf("wrong input count: err = %v", err)
	}
	if _, err := p.SumUints([][]uint64{{1}, {2}, {3}}, []int{7}); !errors.Is(err, ErrInput) {
		t.Errorf("bad dropout id: err = %v", err)
	}
}

func TestPairwiseMasksCancelExactly(t *testing.T) {
	// With self-seeds forced out of the picture by aggregating through the
	// full protocol, the sum of many random inputs must be exact — no noise.
	p, err := New(Config{NumClients: 10, Threshold: 5, VecLen: 6, Entropy: newTestEntropy(10)})
	if err != nil {
		t.Fatal(err)
	}
	r := frand.New(11)
	inputs := make([][]uint64, 10)
	want := make([]uint64, 6)
	for i := range inputs {
		inputs[i] = make([]uint64, 6)
		for k := range inputs[i] {
			inputs[i][k] = r.Uint64n(1000)
			want[k] += inputs[i][k]
		}
	}
	got, err := p.SumUints(inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("sum[%d] = %d, want %d", k, got[k], want[k])
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() []uint64 {
		p, err := New(Config{NumClients: 4, Threshold: 2, VecLen: 2, Entropy: newTestEntropy(42)})
		if err != nil {
			t.Fatal(err)
		}
		out, err := p.SumUints([][]uint64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic result at %d", i)
		}
	}
	if a[0] != 11 || a[1] != 14 {
		t.Fatalf("sum = %v, want [11 14]", a)
	}
}

func TestBitCountAggregation(t *testing.T) {
	// The bit-pushing use case: vector = (bit value, 1) per report, server
	// learns per-bit sum and count only.
	p, err := New(Config{NumClients: 8, Threshold: 4, VecLen: 2, Entropy: newTestEntropy(12)})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]uint64, 8)
	ones := 0
	for i := range inputs {
		bit := uint64(i % 2)
		ones += int(bit)
		inputs[i] = []uint64{bit, 1}
	}
	got, err := p.SumUints(inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != uint64(ones) || got[1] != 8 {
		t.Fatalf("got sum=%d count=%d, want %d and 8", got[0], got[1], ones)
	}
}
