package secagg

import (
	"testing"
	"testing/quick"

	"repro/internal/frand"
)

// TestPropertySumsExactUnderAnyConfig drives randomized configurations,
// inputs and dropout sets through the full protocol and checks the
// invariant: the unmasked sum equals the survivors' exact sum.
func TestPropertySumsExactUnderAnyConfig(t *testing.T) {
	f := func(seed uint64, rawN, rawT, rawV, rawDrop uint8) bool {
		n := 2 + int(rawN)%10     // 2..11 clients
		vecLen := 1 + int(rawV)%5 // 1..5 elements
		r := frand.New(seed)
		// Threshold within [1, n]; dropouts leave at least threshold
		// survivors.
		threshold := 1 + int(rawT)%n
		maxDrop := n - threshold
		nDrop := int(rawDrop) % (maxDrop + 1)

		p, err := New(Config{NumClients: n, Threshold: threshold, VecLen: vecLen, Entropy: newTestEntropy(seed)})
		if err != nil {
			return false
		}
		inputs := make([][]uint64, n)
		for i := range inputs {
			inputs[i] = make([]uint64, vecLen)
			for k := range inputs[i] {
				inputs[i][k] = r.Uint64n(1 << 20)
			}
		}
		perm := r.Perm(n)
		dropouts := perm[:nDrop]
		dropped := make(map[int]bool, nDrop)
		for _, d := range dropouts {
			dropped[d] = true
		}
		got, err := p.SumUints(inputs, dropouts)
		if err != nil {
			return false
		}
		want := make([]uint64, vecLen)
		for i, in := range inputs {
			if dropped[i] {
				continue
			}
			for k, v := range in {
				want[k] += v
			}
		}
		for k := range want {
			if got[k] != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
