package meter

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestChargeAndQuery(t *testing.T) {
	l := NewLedger(Policy{MaxBitsPerValue: 1, MaxBitsPerFeature: 4, MaxEpsilon: 2})
	if err := l.Charge("c1", "latency", 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("c1", "latency", 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := l.BitsDisclosed("c1", "latency"); got != 2 {
		t.Errorf("BitsDisclosed = %d, want 2", got)
	}
	if got := l.EpsilonSpent("c1"); got != 1 {
		t.Errorf("EpsilonSpent = %v, want 1", got)
	}
	rem, ok := l.RemainingEpsilon("c1")
	if !ok || rem != 1 {
		t.Errorf("RemainingEpsilon = %v, %v", rem, ok)
	}
}

func TestPerValueCap(t *testing.T) {
	l := NewLedger(Policy{MaxBitsPerValue: 1})
	if err := l.Charge("c1", "f", 2, 0); !errors.Is(err, ErrBitBudget) {
		t.Fatalf("2-bit charge err = %v, want ErrBitBudget", err)
	}
	// Failed charge must not be recorded.
	if l.BitsDisclosed("c1", "f") != 0 {
		t.Error("failed charge was recorded")
	}
}

func TestPerFeatureCap(t *testing.T) {
	l := NewLedger(Policy{MaxBitsPerValue: 1, MaxBitsPerFeature: 2})
	for i := 0; i < 2; i++ {
		if err := l.Charge("c1", "f", 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Charge("c1", "f", 1, 0); !errors.Is(err, ErrBitBudget) {
		t.Fatalf("over-cap charge err = %v", err)
	}
	// Other features remain chargeable.
	if err := l.Charge("c1", "g", 1, 0); err != nil {
		t.Fatalf("independent feature blocked: %v", err)
	}
	// Other clients remain chargeable.
	if err := l.Charge("c2", "f", 1, 0); err != nil {
		t.Fatalf("independent client blocked: %v", err)
	}
}

func TestEpsilonCapComposesAcrossFeatures(t *testing.T) {
	l := NewLedger(Policy{MaxBitsPerValue: 1, MaxEpsilon: 1.0})
	if err := l.Charge("c1", "f", 1, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("c1", "g", 1, 0.6); !errors.Is(err, ErrEpsBudget) {
		t.Fatalf("composition over cap err = %v", err)
	}
	if err := l.Charge("c1", "g", 1, 0.4); err != nil {
		t.Fatalf("within-budget charge blocked: %v", err)
	}
}

func TestUnlimitedPolicies(t *testing.T) {
	l := NewLedger(Policy{}) // all zero: unlimited
	for i := 0; i < 100; i++ {
		if err := l.Charge("c", "f", 5, 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := l.RemainingEpsilon("c"); ok {
		t.Error("RemainingEpsilon should report no cap")
	}
}

func TestInvalidCharge(t *testing.T) {
	l := NewLedger(DefaultPolicy)
	if err := l.Charge("c", "f", -1, 0); !errors.Is(err, ErrCharge) {
		t.Errorf("negative bits err = %v", err)
	}
	if err := l.Charge("c", "f", 1, -0.1); !errors.Is(err, ErrCharge) {
		t.Errorf("negative eps err = %v", err)
	}
}

func TestUnknownClientQueries(t *testing.T) {
	l := NewLedger(DefaultPolicy)
	if l.BitsDisclosed("nobody", "f") != 0 || l.EpsilonSpent("nobody") != 0 {
		t.Error("unknown client should read as zero")
	}
}

func TestSnapshotSorted(t *testing.T) {
	l := NewLedger(Policy{MaxBitsPerValue: 1})
	_ = l.Charge("b", "y", 1, 0.1)
	_ = l.Charge("a", "z", 1, 0.2)
	_ = l.Charge("a", "x", 1, 0.2)
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	if snap[0].Client != "a" || snap[0].Feature != "x" ||
		snap[1].Client != "a" || snap[1].Feature != "z" ||
		snap[2].Client != "b" || snap[2].Feature != "y" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	if snap[0].Epsilon != 0.4 || snap[0].Features != 2 {
		t.Errorf("client a totals wrong: %+v", snap[0])
	}
}

func TestDefaultPolicyOneBitPerValue(t *testing.T) {
	l := NewLedger(DefaultPolicy)
	if err := l.Charge("c", "f", 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("c", "f", 2, 0.5); !errors.Is(err, ErrBitBudget) {
		t.Fatalf("default policy allowed 2 bits per value: %v", err)
	}
}

func TestConcurrentCharges(t *testing.T) {
	l := NewLedger(Policy{MaxBitsPerValue: 1, MaxBitsPerFeature: 1000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				client := fmt.Sprintf("c%d", g%4)
				if err := l.Charge(client, "f", 1, 0.001); err != nil {
					t.Errorf("concurrent charge failed: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for g := 0; g < 4; g++ {
		total += l.BitsDisclosed(fmt.Sprintf("c%d", g), "f")
	}
	if total != 800 {
		t.Fatalf("total bits %d, want 800", total)
	}
}
