// Package meter implements privacy metering: a per-client ledger of how
// many private bits and how much privacy budget (ε) have been disclosed
// per feature. The paper proposes metering private data "not at the value
// level ... but at the bit level" so platforms can surface disclosure
// limits as user-facing controls (§1.1, "Privacy metering"); the paper
// deliberately leaves deployment of metering out of scope, so this package
// is the repository's implementation of that sketched design.
package meter

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Errors returned by Charge.
var (
	ErrBitBudget = errors.New("meter: bit budget exhausted")
	ErrEpsBudget = errors.New("meter: epsilon budget exhausted")
	ErrCharge    = errors.New("meter: invalid charge")
)

// Policy caps what one client may disclose.
type Policy struct {
	// MaxBitsPerValue caps bits disclosed about any single private value.
	// The paper's protocols use 1: "For each private value, at most one
	// bit is used."
	MaxBitsPerValue int
	// MaxBitsPerFeature caps total bits disclosed about one feature across
	// all collection rounds; 0 means unlimited.
	MaxBitsPerFeature int
	// MaxEpsilon caps total ε spent (basic sequential composition) across
	// all features; 0 means unlimited.
	MaxEpsilon float64
}

// DefaultPolicy is the paper's stance: one bit per value, at most 16 bits
// per feature over a metric's lifetime, total ε of 8 under composition.
var DefaultPolicy = Policy{MaxBitsPerValue: 1, MaxBitsPerFeature: 16, MaxEpsilon: 8}

// Metric names the ledger publishes when a registry is attached via
// SetMetrics. Bits are labeled by feature, denials by the budget that
// fired (bit_budget, eps_budget, invalid).
const (
	MetricBitsDisclosed = "meter_bits_disclosed_total"
	MetricEpsilonSpent  = "meter_epsilon_spent"
	MetricDenials       = "meter_denials_total"
	MetricClients       = "meter_clients"
)

// Ledger tracks disclosures for a population of clients. It is safe for
// concurrent use by the aggregation server.
type Ledger struct {
	policy Policy

	mu      sync.Mutex
	clients map[string]*clientAccount

	bits    *obs.CounterVec
	eps     *obs.Gauge
	denials *obs.CounterVec
	gauge   *obs.Gauge
}

type clientAccount struct {
	bitsPerFeature map[string]int
	epsSpent       float64
}

// NewLedger returns a ledger enforcing the given policy.
func NewLedger(policy Policy) *Ledger {
	return &Ledger{policy: policy, clients: make(map[string]*clientAccount)}
}

// SetMetrics mirrors the ledger's running totals into reg: cumulative
// bits disclosed per feature, total ε spent across the population, the
// number of distinct metered clients, and denials by exhausted budget.
// Attach before charging; earlier charges are not backfilled.
func (l *Ledger) SetMetrics(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bits = reg.CounterVec(MetricBitsDisclosed,
		"Private bits disclosed across all clients, by feature.", "feature")
	l.eps = reg.Gauge(MetricEpsilonSpent,
		"Total privacy budget (epsilon) spent across the client population.")
	l.denials = reg.CounterVec(MetricDenials,
		"Charges refused by the privacy meter, by exhausted budget.", "reason")
	l.gauge = reg.Gauge(MetricClients,
		"Distinct clients with at least one metered disclosure.")
}

// deny counts a refused charge when a registry is attached; callers hold
// l.mu or are on the validation path before any state exists.
func (l *Ledger) deny(reason string) {
	if l.denials != nil {
		l.denials.With(reason).Inc()
	}
}

// Charge records that client is about to disclose `bits` bits about one
// value of `feature` under privacy parameter eps (eps 0 for mechanisms
// without a DP layer). It returns an error — and records nothing — if the
// disclosure would exceed the policy.
func (l *Ledger) Charge(client, feature string, bits int, eps float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if bits < 0 || eps < 0 {
		l.deny("invalid")
		return fmt.Errorf("%w: bits=%d eps=%v", ErrCharge, bits, eps)
	}
	if l.policy.MaxBitsPerValue > 0 && bits > l.policy.MaxBitsPerValue {
		l.deny("bit_budget")
		return fmt.Errorf("%w: %d bits for one value exceeds per-value cap %d",
			ErrBitBudget, bits, l.policy.MaxBitsPerValue)
	}
	acct := l.clients[client]
	if acct == nil {
		acct = &clientAccount{bitsPerFeature: make(map[string]int)}
		l.clients[client] = acct
		if l.gauge != nil {
			l.gauge.Set(float64(len(l.clients)))
		}
	}
	if l.policy.MaxBitsPerFeature > 0 && acct.bitsPerFeature[feature]+bits > l.policy.MaxBitsPerFeature {
		l.deny("bit_budget")
		return fmt.Errorf("%w: client %q feature %q at %d bits, charge of %d exceeds cap %d",
			ErrBitBudget, client, feature, acct.bitsPerFeature[feature], bits, l.policy.MaxBitsPerFeature)
	}
	if l.policy.MaxEpsilon > 0 && acct.epsSpent+eps > l.policy.MaxEpsilon {
		l.deny("eps_budget")
		return fmt.Errorf("%w: client %q at ε=%.3f, charge of %.3f exceeds cap %.3f",
			ErrEpsBudget, client, acct.epsSpent, eps, l.policy.MaxEpsilon)
	}
	acct.bitsPerFeature[feature] += bits
	acct.epsSpent += eps
	if l.bits != nil && bits > 0 {
		l.bits.With(feature).Add(uint64(bits))
	}
	if l.eps != nil && eps > 0 {
		l.eps.Add(eps)
	}
	return nil
}

// BitsDisclosed returns the bits disclosed by client about feature.
func (l *Ledger) BitsDisclosed(client, feature string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if acct := l.clients[client]; acct != nil {
		return acct.bitsPerFeature[feature]
	}
	return 0
}

// EpsilonSpent returns client's total ε under basic composition.
func (l *Ledger) EpsilonSpent(client string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if acct := l.clients[client]; acct != nil {
		return acct.epsSpent
	}
	return 0
}

// RemainingEpsilon returns the ε budget left for client, or +Inf semantics
// via ok=false when the policy does not cap ε.
func (l *Ledger) RemainingEpsilon(client string) (remaining float64, ok bool) {
	if l.policy.MaxEpsilon <= 0 {
		return 0, false
	}
	return l.policy.MaxEpsilon - l.EpsilonSpent(client), true
}

// Entry is one row of a ledger snapshot.
type Entry struct {
	Client   string
	Feature  string
	Bits     int
	Epsilon  float64 // total ε for the client (repeated across its rows)
	Features int     // number of features the client disclosed about
}

// Snapshot returns the ledger contents sorted by client then feature, for
// audit surfaces and tests.
func (l *Ledger) Snapshot() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for client, acct := range l.clients {
		for feature, bits := range acct.bitsPerFeature {
			out = append(out, Entry{
				Client:   client,
				Feature:  feature,
				Bits:     bits,
				Epsilon:  acct.epsSpent,
				Features: len(acct.bitsPerFeature),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Feature < out[j].Feature
	})
	return out
}
