package quantile

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/stats"
	"repro/internal/workload"
)

func normalValues(n, bits int, mu, sigma float64, seed uint64) []uint64 {
	vals := workload.Normal{Mu: mu, Sigma: sigma}.Sample(frand.New(seed), n)
	return fixedpoint.MustCodec(bits, 0, 1).EncodeAll(vals)
}

func exactQuantile(values []uint64, q float64) uint64 {
	sorted := append([]uint64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func TestConfigValidation(t *testing.T) {
	values := make([]uint64, 100)
	r := frand.New(1)
	if _, err := EstimateCDF(Config{Bits: 0}, []uint64{1}, values, r); !errors.Is(err, ErrConfig) {
		t.Errorf("bits=0: %v", err)
	}
	if _, err := EstimateCDF(Config{Bits: 60}, []uint64{1}, values, r); !errors.Is(err, ErrConfig) {
		t.Errorf("bits=60: %v", err)
	}
	if _, err := EstimateCDF(Config{Bits: 8, MinPerThreshold: -1}, []uint64{1}, values, r); !errors.Is(err, ErrConfig) {
		t.Errorf("negative min: %v", err)
	}
}

func TestUniformGrid(t *testing.T) {
	grid, err := UniformGrid(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{32, 96, 160, 224}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("grid = %v, want %v", grid, want)
		}
	}
	if _, err := UniformGrid(0, 4); !errors.Is(err, ErrConfig) {
		t.Errorf("bits=0: %v", err)
	}
	if _, err := UniformGrid(2, 8); err == nil {
		t.Error("k > domain accepted")
	}
}

func TestEstimateCDFValidation(t *testing.T) {
	values := make([]uint64, 100)
	r := frand.New(2)
	if _, err := EstimateCDF(Config{Bits: 8}, nil, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("no thresholds: %v", err)
	}
	if _, err := EstimateCDF(Config{Bits: 8}, []uint64{5, 5}, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("duplicate thresholds: %v", err)
	}
	// 100 clients across 16 thresholds leaves 6 < 16 per query.
	grid, _ := UniformGrid(8, 16)
	if _, err := EstimateCDF(Config{Bits: 8}, grid, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("undersized cohort: %v", err)
	}
}

func TestEstimateCDFShape(t *testing.T) {
	values := normalValues(40000, 10, 500, 80, 3)
	grid, _ := UniformGrid(10, 32)
	cdf, err := EstimateCDF(Config{Bits: 10}, grid, values, frand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Monotone non-increasing, in [0,1].
	for i := range cdf.Tail {
		if cdf.Tail[i] < 0 || cdf.Tail[i] > 1 {
			t.Fatalf("tail[%d] = %v outside [0,1]", i, cdf.Tail[i])
		}
		if i > 0 && cdf.Tail[i] > cdf.Tail[i-1] {
			t.Fatalf("tail not monotone at %d: %v > %v", i, cdf.Tail[i], cdf.Tail[i-1])
		}
	}
	// Tail near 1 below the distribution, near 0 above it.
	if cdf.Tail[0] < 0.95 {
		t.Errorf("tail at t=%d is %v, want ~1", cdf.Thresholds[0], cdf.Tail[0])
	}
	last := len(cdf.Tail) - 1
	if cdf.Tail[last] > 0.05 {
		t.Errorf("tail at t=%d is %v, want ~0", cdf.Thresholds[last], cdf.Tail[last])
	}
	// Around the mean the tail should cross 1/2.
	for i, thr := range cdf.Thresholds {
		if thr >= 500 {
			if math.Abs(cdf.Tail[i]-0.5) > 0.15 {
				t.Errorf("tail just above mean = %v, want ~0.5", cdf.Tail[i])
			}
			break
		}
	}
}

func TestCDFQuantileAccuracy(t *testing.T) {
	values := normalValues(60000, 10, 500, 80, 5)
	grid, _ := UniformGrid(10, 64)
	var errsMedian, errsP90 []float64
	for rep := uint64(0); rep < 15; rep++ {
		cdf, err := EstimateCDF(Config{Bits: 10}, grid, values, frand.New(100+rep))
		if err != nil {
			t.Fatal(err)
		}
		med, err := cdf.Quantile(0.5)
		if err != nil {
			t.Fatal(err)
		}
		p90, err := cdf.Quantile(0.9)
		if err != nil {
			t.Fatal(err)
		}
		errsMedian = append(errsMedian, float64(med))
		errsP90 = append(errsP90, float64(p90))
	}
	trueMed := float64(exactQuantile(values, 0.5))
	trueP90 := float64(exactQuantile(values, 0.9))
	// Grid resolution is 16; accept error within a couple of grid steps.
	if rmse := stats.RMSE(errsMedian, trueMed); rmse > 40 {
		t.Errorf("median RMSE %v (truth %v)", rmse, trueMed)
	}
	if rmse := stats.RMSE(errsP90, trueP90); rmse > 40 {
		t.Errorf("p90 RMSE %v (truth %v)", rmse, trueP90)
	}
}

func TestCDFQuantileValidation(t *testing.T) {
	c := &CDF{Thresholds: []uint64{1, 2}, Tail: []float64{1, 0}}
	if _, err := c.Quantile(0); !errors.Is(err, ErrInput) {
		t.Errorf("q=0: %v", err)
	}
	if _, err := c.Quantile(1); !errors.Is(err, ErrInput) {
		t.Errorf("q=1: %v", err)
	}
}

func TestBinarySearchMedian(t *testing.T) {
	values := normalValues(50000, 10, 500, 80, 6)
	trueMed := exactQuantile(values, 0.5)
	var ests []float64
	for rep := uint64(0); rep < 15; rep++ {
		res, err := EstimateMedian(Config{Bits: 10}, values, frand.New(200+rep))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != 10 {
			t.Fatalf("rounds = %d, want 10", res.Rounds)
		}
		ests = append(ests, float64(res.Quantile))
	}
	if rmse := stats.RMSE(ests, float64(trueMed)); rmse > 25 {
		t.Errorf("binary-search median RMSE %v (truth %d)", rmse, trueMed)
	}
}

func TestBinarySearchTailQuantile(t *testing.T) {
	values := normalValues(50000, 10, 400, 60, 7)
	trueP95 := exactQuantile(values, 0.95)
	var ests []float64
	for rep := uint64(0); rep < 15; rep++ {
		res, err := EstimateQuantile(Config{Bits: 10}, 0.95, values, frand.New(300+rep))
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, float64(res.Quantile))
	}
	if rmse := stats.RMSE(ests, float64(trueP95)); rmse > 30 {
		t.Errorf("p95 RMSE %v (truth %d)", rmse, trueP95)
	}
}

func TestBinarySearchUnderLDP(t *testing.T) {
	rr, err := ldp.NewRandomizedResponse(2)
	if err != nil {
		t.Fatal(err)
	}
	values := normalValues(100000, 10, 500, 80, 8)
	trueMed := exactQuantile(values, 0.5)
	var ests []float64
	for rep := uint64(0); rep < 15; rep++ {
		res, err := EstimateMedian(Config{Bits: 10, RR: rr}, values, frand.New(400+rep))
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, float64(res.Quantile))
	}
	if rmse := stats.RMSE(ests, float64(trueMed)); rmse > 60 {
		t.Errorf("LDP median RMSE %v (truth %d)", rmse, trueMed)
	}
}

func TestBinarySearchTrace(t *testing.T) {
	values := normalValues(20000, 8, 100, 20, 9)
	res, err := EstimateMedian(Config{Bits: 8}, values, frand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 || len(res.Trace) > 8 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	// First probe must be the domain midpoint.
	if res.Trace[0].Threshold != 128 {
		t.Errorf("first threshold = %d, want 128", res.Trace[0].Threshold)
	}
	if res.PerRound != 20000/8 {
		t.Errorf("PerRound = %d", res.PerRound)
	}
}

func TestBinarySearchValidation(t *testing.T) {
	values := make([]uint64, 100)
	r := frand.New(11)
	if _, err := EstimateQuantile(Config{Bits: 8}, 1.5, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("q=1.5: %v", err)
	}
	// 100 clients over 8 rounds leaves 12 < 16 per round.
	if _, err := EstimateQuantile(Config{Bits: 8}, 0.5, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("undersized cohort: %v", err)
	}
}

func TestTrimmedMeanFromCDF(t *testing.T) {
	values := normalValues(40000, 10, 500, 80, 12)
	grid, _ := UniformGrid(10, 64)
	cdf, err := EstimateCDF(Config{Bits: 10}, grid, values, frand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := TrimmedMeanFromCDF(cdf, 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("clip range [%d, %d] degenerate", lo, hi)
	}
	trueLo, trueHi := exactQuantile(values, 0.05), exactQuantile(values, 0.95)
	if math.Abs(float64(lo)-float64(trueLo)) > 50 || math.Abs(float64(hi)-float64(trueHi)) > 50 {
		t.Errorf("clip range [%d,%d], exact [%d,%d]", lo, hi, trueLo, trueHi)
	}
	if _, _, err := TrimmedMeanFromCDF(cdf, 0.9, 0.1); !errors.Is(err, ErrInput) {
		t.Errorf("inverted range: %v", err)
	}
	// Degenerate-but-valid endpoints.
	if lo0, _, err := TrimmedMeanFromCDF(cdf, 0, 0.95); err != nil || lo0 != 0 {
		t.Errorf("qLo=0: lo=%d err=%v", lo0, err)
	}
}

func TestAdaptiveClipBits(t *testing.T) {
	// Values fit comfortably in 9 bits although the domain allows 20:
	// the probe must choose a clip depth near 9-10, not 20.
	vals := workload.Normal{Mu: 300, Sigma: 40}.Sample(frand.New(14), 20000)
	probe := fixedpoint.MustCodec(20, 0, 1).EncodeAll(vals)
	bits, err := AdaptiveClipBits(Config{Bits: 20}, 0.99, probe, frand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	if bits < 9 || bits > 11 {
		t.Fatalf("AdaptiveClipBits = %d, want 9-11", bits)
	}
}

func TestSkewedDataMedianVsMean(t *testing.T) {
	// The §4.3 motivation: for heavy-tailed data the median is stable
	// where the mean is not. Check the estimated median sits far below
	// the (outlier-driven) mean.
	vals := workload.DeviceMetric{OutlierMax: 1 << 20}.Sample(frand.New(16), 60000)
	values := fixedpoint.MustCodec(20, 0, 1).EncodeAll(vals)
	res, err := EstimateMedian(Config{Bits: 20}, values, frand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	mean := fixedpoint.Mean(values)
	if float64(res.Quantile) > mean/10 {
		t.Fatalf("median %d not far below outlier-driven mean %v", res.Quantile, mean)
	}
	if res.Quantile > 3 {
		t.Fatalf("median %d, exact is 0 or 1", res.Quantile)
	}
}

func TestDeterministic(t *testing.T) {
	values := normalValues(20000, 10, 500, 80, 18)
	a, err := EstimateMedian(Config{Bits: 10}, values, frand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateMedian(Config{Bits: 10}, values, frand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if a.Quantile != b.Quantile {
		t.Fatal("median search not deterministic")
	}
}
