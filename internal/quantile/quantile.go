// Package quantile estimates medians, percentiles and CDFs federatedly
// with one bit per client. §4.3 of the paper observes that for
// heavy-tailed metrics "robust statistics are more appropriate, such as
// the median and percentiles"; this package builds them from the paper's
// own primitive — a single disclosed bit — using threshold queries:
// a client asked about threshold t reports 1{x >= t}, optionally through
// randomized response (the paper flags exactly this bit as
// privacy-sensitive: "disclosing whether a value is above or below a
// threshold").
//
// Two estimators are provided, mirroring the paper's range-localization
// discussion (§2): a single-round CDF sweep that spreads clients across a
// threshold grid (one round of interaction, like bit-pushing), and a
// multi-round binary search that spends a fresh cohort slice per round
// (each client still discloses one bit total).
package quantile

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/frand"
	"repro/internal/ldp"
)

// Errors returned by the estimators.
var (
	ErrConfig = errors.New("quantile: invalid configuration")
	ErrInput  = errors.New("quantile: invalid input")
)

// Config parametrizes threshold-query estimation.
type Config struct {
	// Bits bounds the value domain [0, 2^Bits).
	Bits int
	// RR optionally applies ε-LDP randomized response to each threshold
	// bit; estimates are unbiased at the server.
	RR *ldp.RandomizedResponse
	// MinPerThreshold is the smallest cohort slice allotted to one
	// threshold query; estimation fails rather than run below it.
	// Zero means 16.
	MinPerThreshold int
}

func (c *Config) minPerThreshold() int {
	if c.MinPerThreshold == 0 {
		return 16
	}
	return c.MinPerThreshold
}

func (c *Config) validate() error {
	if c.Bits < 1 || c.Bits > 52 {
		return fmt.Errorf("%w: Bits=%d", ErrConfig, c.Bits)
	}
	if c.MinPerThreshold < 0 {
		return fmt.Errorf("%w: MinPerThreshold=%d", ErrConfig, c.MinPerThreshold)
	}
	return nil
}

// tailQuery estimates P(X >= t) from one bit per client in cohort.
func (c *Config) tailQuery(t uint64, cohort []uint64, r *frand.RNG) float64 {
	ones := 0
	for _, v := range cohort {
		bit := uint64(0)
		if v >= t {
			bit = 1
		}
		if c.RR != nil {
			bit = c.RR.Apply(bit, r)
		}
		ones += int(bit)
	}
	m := float64(ones) / float64(len(cohort))
	if c.RR != nil {
		m = c.RR.UnbiasMean(m)
	}
	return m
}

// CDF is an estimated complementary CDF on a threshold grid.
type CDF struct {
	// Thresholds are the queried points, ascending.
	Thresholds []uint64
	// Tail[i] estimates P(X >= Thresholds[i]), monotonized into [0, 1].
	Tail []float64
	// RawTail preserves the unbiased estimates before monotonization.
	RawTail []float64
	// PerThreshold is the cohort size each threshold received.
	PerThreshold int
}

// EstimateCDF runs the single-round sweep: clients are partitioned evenly
// across the threshold grid (central randomness — the server decides who
// answers which threshold), each discloses one threshold bit, and the
// per-threshold tail probabilities are unbiased and monotonized.
func EstimateCDF(cfg Config, thresholds []uint64, values []uint64, r *frand.RNG) (*CDF, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("%w: no thresholds", ErrInput)
	}
	sorted := append([]uint64(nil), thresholds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("%w: duplicate threshold %d", ErrInput, sorted[i])
		}
	}
	per := len(values) / len(sorted)
	if per < cfg.minPerThreshold() {
		return nil, fmt.Errorf("%w: %d clients across %d thresholds leaves %d per query (min %d)",
			ErrInput, len(values), len(sorted), per, cfg.minPerThreshold())
	}
	perm := r.Perm(len(values))
	out := &CDF{
		Thresholds:   sorted,
		Tail:         make([]float64, len(sorted)),
		RawTail:      make([]float64, len(sorted)),
		PerThreshold: per,
	}
	for i, t := range sorted {
		cohort := make([]uint64, per)
		for k := 0; k < per; k++ {
			cohort[k] = values[perm[i*per+k]]
		}
		out.RawTail[i] = cfg.tailQuery(t, cohort, r)
	}
	copy(out.Tail, MonotonizeTail(out.RawTail))
	return out, nil
}

// MonotonizeTail projects raw tail-probability estimates onto the feasible
// set: the true tail P(X >= t) is non-increasing in t and lives in [0,1],
// so estimates are clamped and passed through a running minimum. The input
// is not modified.
func MonotonizeTail(raw []float64) []float64 {
	out := make([]float64, len(raw))
	running := 1.0
	for i, v := range raw {
		v = math.Max(0, math.Min(1, v))
		running = math.Min(running, v)
		out[i] = running
	}
	return out
}

// Quantile reads the q-quantile (q in (0,1)) off the estimated CDF: the
// smallest threshold whose tail probability drops to 1-q or below.
func (c *CDF) Quantile(q float64) (uint64, error) {
	if !(q > 0 && q < 1) {
		return 0, fmt.Errorf("%w: q=%v", ErrInput, q)
	}
	for i, tail := range c.Tail {
		if tail <= 1-q {
			return c.Thresholds[i], nil
		}
	}
	return c.Thresholds[len(c.Thresholds)-1], nil
}

// UniformGrid returns k evenly spaced thresholds over [0, 2^bits).
func UniformGrid(bits, k int) ([]uint64, error) {
	if bits < 1 || bits > 52 || k < 1 || uint64(k) > uint64(1)<<uint(bits) {
		return nil, fmt.Errorf("%w: bits=%d k=%d", ErrConfig, bits, k)
	}
	max := uint64(1) << uint(bits)
	out := make([]uint64, k)
	for i := range out {
		out[i] = uint64((float64(i) + 0.5) / float64(k) * float64(max))
	}
	return out, nil
}

// GeometricGrid returns the power-of-two thresholds {1, 2, 4, ..., 2^(bits-1)},
// the natural grid for locating a distribution's magnitude (each step is
// one bit of the representation).
func GeometricGrid(bits int) ([]uint64, error) {
	if bits < 1 || bits > 52 {
		return nil, fmt.Errorf("%w: bits=%d", ErrConfig, bits)
	}
	out := make([]uint64, bits)
	for i := range out {
		out[i] = uint64(1) << uint(i)
	}
	return out, nil
}

// SearchResult is the outcome of the binary-search estimator.
type SearchResult struct {
	// Quantile is the located value.
	Quantile uint64
	// Rounds is the number of interaction rounds used.
	Rounds int
	// PerRound is the cohort slice size spent per round.
	PerRound int
	// Trace records each round's (threshold, estimated tail).
	Trace []SearchStep
}

// SearchStep is one round of the search.
type SearchStep struct {
	Threshold uint64
	Tail      float64
}

// EstimateQuantile locates the q-quantile by binary search over the value
// domain: each round queries one threshold on a fresh slice of the client
// population (so no client ever discloses more than one bit), and halves
// the bracket. It uses Bits rounds — the multi-round cost the paper's
// range-localization discussion contrasts with bit-pushing's single round
// (§2: "rather than multiple rounds required by binary search").
func EstimateQuantile(cfg Config, q float64, values []uint64, r *frand.RNG) (*SearchResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !(q > 0 && q < 1) {
		return nil, fmt.Errorf("%w: q=%v", ErrInput, q)
	}
	rounds := cfg.Bits
	per := len(values) / rounds
	if per < cfg.minPerThreshold() {
		return nil, fmt.Errorf("%w: %d clients over %d rounds leaves %d per round (min %d)",
			ErrInput, len(values), rounds, per, cfg.minPerThreshold())
	}
	perm := r.Perm(len(values))
	res := &SearchResult{Rounds: rounds, PerRound: per}
	lo, hi := uint64(0), uint64(1)<<uint(cfg.Bits) // invariant: quantile in [lo, hi)
	for round := 0; round < rounds && hi-lo > 1; round++ {
		mid := lo + (hi-lo)/2
		cohort := make([]uint64, per)
		for k := 0; k < per; k++ {
			cohort[k] = values[perm[round*per+k]]
		}
		tail := cfg.tailQuery(mid, cohort, r)
		res.Trace = append(res.Trace, SearchStep{Threshold: mid, Tail: tail})
		if tail > 1-q {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.Quantile = lo
	return res, nil
}

// EstimateMedian is EstimateQuantile at q = 1/2.
func EstimateMedian(cfg Config, values []uint64, r *frand.RNG) (*SearchResult, error) {
	return EstimateQuantile(cfg, 0.5, values, r)
}

// TrimmedMeanFromCDF estimates a winsorized mean bound pair from the CDF:
// thresholds bracketing [qLo, qHi] quantiles, usable to configure the
// clipping (§4.3) of a subsequent bit-pushing mean round. It returns the
// located lower and upper clip points.
func TrimmedMeanFromCDF(c *CDF, qLo, qHi float64) (lo, hi uint64, err error) {
	if !(qLo >= 0 && qLo < qHi && qHi <= 1) {
		return 0, 0, fmt.Errorf("%w: quantile range [%v, %v]", ErrInput, qLo, qHi)
	}
	if qLo == 0 {
		lo = 0
	} else if lo, err = c.Quantile(qLo); err != nil {
		return 0, 0, err
	}
	if qHi >= 1 { // validated qHi <= 1 above, so this is the exact top-quantile test
		hi = c.Thresholds[len(c.Thresholds)-1]
	} else if hi, err = c.Quantile(qHi); err != nil {
		return 0, 0, err
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi, nil
}

// AdaptiveClipBits uses a cheap CDF sweep over the power-of-two grid on a
// probe cohort to choose the clipping bit depth for a subsequent
// bit-pushing round: the smallest depth whose range covers the qHi
// quantile. This packages the §4.3 guidance ("leveraging domain knowledge
// to choose the appropriate number of bits") as a data-driven two-round
// pipeline, spending one bit per probe client.
func AdaptiveClipBits(cfg Config, qHi float64, probe []uint64, r *frand.RNG) (int, error) {
	grid, err := GeometricGrid(cfg.Bits)
	if err != nil {
		return 0, err
	}
	cdf, err := EstimateCDF(cfg, grid, probe, r)
	if err != nil {
		return 0, err
	}
	clip, err := cdf.Quantile(qHi)
	if err != nil {
		return 0, err
	}
	bits := 1
	for uint64(1)<<uint(bits)-1 < clip {
		bits++
	}
	return bits, nil
}

// ReportsPerClient documents the privacy accounting of this package: every
// estimator charges exactly one disclosed bit per participating client,
// matching core bit-pushing's stance. It exists so the meter integration
// has a single source of truth.
const ReportsPerClient = 1
