package quantile_test

import (
	"fmt"

	"repro/internal/frand"
	"repro/internal/quantile"
	"repro/internal/workload"
)

// Locating the median with one disclosed bit per client: a binary search
// over the domain, each round spending a fresh cohort slice.
func ExampleEstimateMedian() {
	r := frand.New(3)
	gen := workload.Normal{Mu: 500, Sigma: 80}
	values := make([]uint64, 20000)
	for i, v := range gen.Sample(r, len(values)) {
		values[i] = uint64(v)
	}
	res, _ := quantile.EstimateMedian(quantile.Config{Bits: 10}, values, r)
	fmt.Printf("median within 2%% of 500: %v (%d rounds, %d clients per round)\n",
		res.Quantile > 490 && res.Quantile < 510, res.Rounds, res.PerRound)
	// Output:
	// median within 2% of 500: true (10 rounds, 2000 clients per round)
}
