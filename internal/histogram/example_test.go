package histogram_test

import (
	"fmt"

	"repro/internal/frand"
	"repro/internal/histogram"
)

// Estimating a distribution's shape with one membership bit per client:
// each client answers yes/no about one server-chosen bucket.
func ExampleEstimate() {
	r := frand.New(21)
	values := make([]uint64, 32000)
	for i := range values {
		values[i] = 64 + r.Uint64n(64) // everything in bucket 1 of 4
	}
	buckets, _ := histogram.UniformBuckets(8, 4)
	res, _ := histogram.Estimate(histogram.Config{Buckets: buckets}, values, r)
	top := res.TopK(1)[0]
	fmt.Printf("modal bucket %d covers [%d, %d) with frequency %.2f\n",
		top.Bucket, buckets.Edges[top.Bucket], buckets.Edges[top.Bucket+1], top.Freq)
	// Output:
	// modal bucket 1 covers [64, 128) with frequency 1.00
}
