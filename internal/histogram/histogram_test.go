package histogram

import (
	"errors"
	"math"
	"testing"

	"repro/internal/distdp"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/workload"
)

func TestNewBucketsValidation(t *testing.T) {
	for _, edges := range [][]uint64{nil, {1}, {1, 1}, {2, 1}, {0, 5, 5}} {
		if _, err := NewBuckets(edges); !errors.Is(err, ErrEdges) {
			t.Errorf("NewBuckets(%v) err = %v", edges, err)
		}
	}
	b, err := NewBuckets([]uint64{0, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if b.K() != 2 {
		t.Errorf("K = %d", b.K())
	}
}

func TestUniformBuckets(t *testing.T) {
	b, err := UniformBuckets(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 64, 128, 192, 256}
	for i := range want {
		if b.Edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", b.Edges, want)
		}
	}
	if _, err := UniformBuckets(0, 4); !errors.Is(err, ErrEdges) {
		t.Errorf("bits=0: %v", err)
	}
	if _, err := UniformBuckets(2, 10); !errors.Is(err, ErrEdges) {
		t.Errorf("k>domain: %v", err)
	}
}

func TestBucketIndex(t *testing.T) {
	b, _ := NewBuckets([]uint64{10, 20, 30, 40})
	cases := []struct {
		v    uint64
		want int
	}{
		{9, -1}, {10, 0}, {19, 0}, {20, 1}, {29, 1}, {30, 2}, {39, 2}, {40, -1}, {100, -1},
	}
	for _, c := range cases {
		if got := b.Index(c.v); got != c.want {
			t.Errorf("Index(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestMidpoint(t *testing.T) {
	b, _ := NewBuckets([]uint64{0, 10, 30})
	if b.Midpoint(0) != 5 || b.Midpoint(1) != 20 {
		t.Errorf("midpoints %v %v", b.Midpoint(0), b.Midpoint(1))
	}
}

func TestEstimateValidation(t *testing.T) {
	values := make([]uint64, 100)
	r := frand.New(1)
	if _, err := Estimate(Config{}, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("nil buckets: %v", err)
	}
	b, _ := UniformBuckets(8, 16)
	if _, err := Estimate(Config{Buckets: b}, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("undersized cohort: %v", err)
	}
	if _, err := Estimate(Config{Buckets: b, MinPerBucket: -1}, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("negative min: %v", err)
	}
}

func TestEstimateMatchesEmpirical(t *testing.T) {
	values := fixedpoint.MustCodec(8, 0, 1).EncodeAll(
		workload.Normal{Mu: 128, Sigma: 30}.Sample(frand.New(2), 64000))
	b, _ := UniformBuckets(8, 8)
	res, err := Estimate(Config{Buckets: b}, values, frand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Empirical frequencies.
	exact := make([]float64, b.K())
	for _, v := range values {
		if i := b.Index(v); i >= 0 {
			exact[i]++
		}
	}
	for i := range exact {
		exact[i] /= float64(len(values))
	}
	for i := range exact {
		if math.Abs(res.Freqs[i]-exact[i]) > 0.02 {
			t.Errorf("bucket %d freq %v, exact %v", i, res.Freqs[i], exact[i])
		}
	}
	// Frequencies sum to 1.
	var sum float64
	for _, f := range res.Freqs {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("frequencies sum to %v", sum)
	}
}

func TestEstimateUnderLDP(t *testing.T) {
	rr, _ := ldp.NewRandomizedResponse(2)
	values := fixedpoint.MustCodec(8, 0, 1).EncodeAll(
		workload.Normal{Mu: 100, Sigma: 25}.Sample(frand.New(4), 80000))
	b, _ := UniformBuckets(8, 8)
	res, err := Estimate(Config{Buckets: b, RR: rr}, values, frand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// The modal bucket (values 64..128 wait: mu=100 → bucket [96,128) = 3)
	// must dominate despite the noise.
	top := res.TopK(1)
	if top[0].Bucket != 3 && top[0].Bucket != 2 {
		t.Errorf("modal bucket %d with freq %v, want 2 or 3 (freqs %v)",
			top[0].Bucket, top[0].Freq, res.Freqs)
	}
}

func TestEstimateMeanAndQuantile(t *testing.T) {
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(
		workload.Normal{Mu: 500, Sigma: 90}.Sample(frand.New(6), 64000))
	b, _ := UniformBuckets(10, 32)
	res, err := Estimate(Config{Buckets: b}, values, frand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Mean(); math.Abs(m-500) > 25 {
		t.Errorf("histogram mean %v, want ~500", m)
	}
	med, err := res.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-500) > 35 {
		t.Errorf("histogram median %v, want ~500", med)
	}
	p90, err := res.Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := 500 + 1.2816*90
	if math.Abs(p90-want) > 45 {
		t.Errorf("histogram p90 %v, want ~%v", p90, want)
	}
}

func TestQuantileValidation(t *testing.T) {
	b, _ := UniformBuckets(4, 2)
	res := &Result{Buckets: b, Freqs: []float64{0.5, 0.5}}
	if _, err := res.Quantile(0); !errors.Is(err, ErrInput) {
		t.Errorf("q=0: %v", err)
	}
	if _, err := res.Quantile(1.2); !errors.Is(err, ErrInput) {
		t.Errorf("q=1.2: %v", err)
	}
}

func TestSampleThresholdSuppressesRareBuckets(t *testing.T) {
	// 95% of mass in bucket 0, traces elsewhere; sample-and-threshold must
	// zero the rare buckets — the [5] histogram-DP behaviour protecting
	// small groups.
	r := frand.New(8)
	values := make([]uint64, 32000)
	for i := range values {
		if r.Bernoulli(0.95) {
			values[i] = r.Uint64n(32) // bucket 0
		} else {
			values[i] = 32 + r.Uint64n(224)
		}
	}
	st, err := distdp.NewSampleThreshold(0.8, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := UniformBuckets(8, 8)
	res, err := Estimate(Config{Buckets: b, SampleThreshold: st}, values, frand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Freqs[0] < 0.9 {
		t.Errorf("dominant bucket freq %v, want ~0.95", res.Freqs[0])
	}
	suppressed := 0
	for _, f := range res.Freqs[1:] {
		if f == 0 {
			suppressed++
		}
	}
	if suppressed < 5 {
		t.Errorf("only %d of 7 rare buckets suppressed (freqs %v)", suppressed, res.Freqs)
	}
}

func TestTopK(t *testing.T) {
	b, _ := UniformBuckets(4, 4)
	res := &Result{Buckets: b, Freqs: []float64{0.1, 0.4, 0.4, 0.1}}
	top := res.TopK(2)
	if len(top) != 2 || top[0].Bucket != 1 || top[1].Bucket != 2 {
		t.Errorf("TopK = %+v", top)
	}
	if got := res.TopK(10); len(got) != 4 {
		t.Errorf("TopK(10) length %d", len(got))
	}
	if res.TopK(0) != nil {
		t.Error("TopK(0) should be nil")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	values := fixedpoint.MustCodec(8, 0, 1).EncodeAll(
		workload.Normal{Mu: 100, Sigma: 20}.Sample(frand.New(10), 8000))
	b, _ := UniformBuckets(8, 8)
	a, err := Estimate(Config{Buckets: b}, values, frand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Estimate(Config{Buckets: b}, values, frand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Freqs {
		if a.Freqs[i] != c.Freqs[i] {
			t.Fatal("histogram not deterministic")
		}
	}
}
