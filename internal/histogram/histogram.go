// Package histogram estimates value distributions federatedly with one
// bit per client. §3.3 observes that "the data gathered in bit-pushing
// protocols is essentially a collection of binary histograms ... for which
// accurate protocols exist under distributed privacy"; this package makes
// that object first-class: the server assigns each client one bucket, the
// client answers the single membership bit 1{x ∈ bucket} (optionally
// through randomized response), and the server reconstructs bucket
// frequencies, from which means, quantiles and top-k modes follow.
//
// The one-bit membership design trades accuracy for the same minimal
// disclosure as bit-pushing: a client never reveals its bucket, only a
// (possibly randomized) yes/no about one server-chosen bucket.
package histogram

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/distdp"
	"repro/internal/frand"
	"repro/internal/ldp"
)

// Errors returned by the package.
var (
	ErrEdges = errors.New("histogram: invalid bucket edges")
	ErrInput = errors.New("histogram: invalid input")
)

// Buckets defines K buckets over a value domain: bucket i covers
// [Edges[i], Edges[i+1]).
type Buckets struct {
	// Edges has K+1 strictly ascending entries.
	Edges []uint64
}

// NewBuckets validates edges and returns the bucket layout.
func NewBuckets(edges []uint64) (*Buckets, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 edges, got %d", ErrEdges, len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("%w: edges not strictly ascending at %d", ErrEdges, i)
		}
	}
	return &Buckets{Edges: append([]uint64(nil), edges...)}, nil
}

// UniformBuckets returns k equal-width buckets over [0, 2^bits).
func UniformBuckets(bits, k int) (*Buckets, error) {
	if bits < 1 || bits > 52 || k < 1 || uint64(k) > uint64(1)<<uint(bits) {
		return nil, fmt.Errorf("%w: bits=%d k=%d", ErrEdges, bits, k)
	}
	max := uint64(1) << uint(bits)
	edges := make([]uint64, k+1)
	for i := range edges {
		edges[i] = uint64(math.Round(float64(i) / float64(k) * float64(max)))
	}
	return NewBuckets(edges)
}

// K returns the number of buckets.
func (b *Buckets) K() int { return len(b.Edges) - 1 }

// Index returns the bucket containing v, or -1 if v is outside the domain.
func (b *Buckets) Index(v uint64) int {
	if v < b.Edges[0] || v >= b.Edges[len(b.Edges)-1] {
		return -1
	}
	// Find the first edge strictly greater than v; v's bucket precedes it.
	i := sort.Search(len(b.Edges), func(i int) bool { return b.Edges[i] > v })
	return i - 1
}

// Midpoint returns the representative value of bucket i.
func (b *Buckets) Midpoint(i int) float64 {
	return (float64(b.Edges[i]) + float64(b.Edges[i+1])) / 2
}

// Config parametrizes a federated histogram round.
type Config struct {
	// Buckets is the layout; required.
	Buckets *Buckets
	// RR optionally applies ε-LDP randomized response to each membership
	// bit.
	RR *ldp.RandomizedResponse
	// SampleThreshold optionally applies the Bharadwaj–Cormode mechanism
	// to the raw per-bucket tallies before unbiasing, the distributed-DP
	// path of §3.3. It operates on the counts of positive answers.
	SampleThreshold *distdp.SampleThreshold
	// MinPerBucket is the smallest cohort slice per bucket; estimation
	// fails rather than run below it. Zero means 16.
	MinPerBucket int
}

func (c *Config) minPerBucket() int {
	if c.MinPerBucket == 0 {
		return 16
	}
	return c.MinPerBucket
}

// Result is an estimated histogram.
type Result struct {
	Buckets *Buckets
	// Freqs are the estimated bucket frequencies: unbiased, clamped to
	// [0, 1] and renormalized to sum to 1 when the raw total is positive.
	Freqs []float64
	// RawFreqs are the unbiased estimates before projection.
	RawFreqs []float64
	// PerBucket is the number of clients asked about each bucket.
	PerBucket int
}

// Estimate runs one federated histogram round: clients are partitioned
// evenly across buckets (central randomness), each answers its single
// membership bit, and per-bucket frequencies are unbiased and projected
// onto the probability simplex.
func Estimate(cfg Config, values []uint64, r *frand.RNG) (*Result, error) {
	if cfg.Buckets == nil {
		return nil, fmt.Errorf("%w: nil buckets", ErrInput)
	}
	if cfg.MinPerBucket < 0 {
		return nil, fmt.Errorf("%w: MinPerBucket=%d", ErrInput, cfg.MinPerBucket)
	}
	k := cfg.Buckets.K()
	per := len(values) / k
	if per < cfg.minPerBucket() {
		return nil, fmt.Errorf("%w: %d clients across %d buckets leaves %d per bucket (min %d)",
			ErrInput, len(values), k, per, cfg.minPerBucket())
	}
	perm := r.Perm(len(values))
	ones := make([]uint64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < per; j++ {
			v := values[perm[i*per+j]]
			bit := uint64(0)
			if cfg.Buckets.Index(v) == i {
				bit = 1
			}
			if cfg.RR != nil {
				bit = cfg.RR.Apply(bit, r)
			}
			ones[i] += bit
		}
	}
	if cfg.SampleThreshold != nil {
		ones = cfg.SampleThreshold.Apply(ones, r)
	}
	res := &Result{
		Buckets:   cfg.Buckets,
		Freqs:     make([]float64, k),
		RawFreqs:  make([]float64, k),
		PerBucket: per,
	}
	for i := 0; i < k; i++ {
		count := float64(per)
		m := float64(ones[i])
		if cfg.SampleThreshold != nil {
			m = cfg.SampleThreshold.Unbias(ones[i])
		}
		m /= count
		if cfg.RR != nil {
			m = cfg.RR.UnbiasMean(m)
		}
		res.RawFreqs[i] = m
	}
	// Project: clamp to [0,1] and renormalize.
	total := 0.0
	for i, m := range res.RawFreqs {
		m = math.Max(0, math.Min(1, m))
		res.Freqs[i] = m
		total += m
	}
	if total > 0 {
		for i := range res.Freqs {
			res.Freqs[i] /= total
		}
	}
	return res, nil
}

// Mean estimates the population mean from bucket midpoints.
func (r *Result) Mean() float64 {
	var m float64
	for i, f := range r.Freqs {
		m += f * r.Buckets.Midpoint(i)
	}
	return m
}

// Quantile estimates the q-quantile (q in (0,1)) by accumulating bucket
// frequencies and interpolating within the crossing bucket.
func (r *Result) Quantile(q float64) (float64, error) {
	if !(q > 0 && q < 1) {
		return 0, fmt.Errorf("%w: q=%v", ErrInput, q)
	}
	acc := 0.0
	for i, f := range r.Freqs {
		if acc+f >= q {
			frac := 0.0
			if f > 0 {
				frac = (q - acc) / f
			}
			lo, hi := float64(r.Buckets.Edges[i]), float64(r.Buckets.Edges[i+1])
			return lo + frac*(hi-lo), nil
		}
		acc += f
	}
	return float64(r.Buckets.Edges[len(r.Buckets.Edges)-1]), nil
}

// Mode is one entry of TopK.
type Mode struct {
	Bucket int
	Freq   float64
}

// TopK returns the k most frequent buckets, descending by estimated
// frequency (ties broken by bucket index). With SampleThreshold in the
// pipeline, rare buckets are suppressed entirely — the behaviour that
// yields the histogram DP guarantee of [5].
func (r *Result) TopK(k int) []Mode {
	if k < 1 {
		return nil
	}
	modes := make([]Mode, len(r.Freqs))
	for i, f := range r.Freqs {
		modes[i] = Mode{Bucket: i, Freq: f}
	}
	sort.Slice(modes, func(a, b int) bool {
		if modes[a].Freq > modes[b].Freq {
			return true
		}
		if modes[a].Freq < modes[b].Freq {
			return false
		}
		return modes[a].Bucket < modes[b].Bucket
	})
	if k > len(modes) {
		k = len(modes)
	}
	return modes[:k]
}
