package frand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: generators with same seed diverged: %d vs %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("generators with different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeats within 100 draws: %d unique", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check over a small modulus.
	r := New(5)
	const n, buckets = 300000, 7
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from expected %.0f", b, c, want)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(1 << 16); v >= 1<<16 {
			t.Fatalf("Uint64n(2^16) = %d out of range", v)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64MatchesBigProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		// For 32-bit inputs the product fits in 64 bits: hi must be 0 and
		// lo must equal the native product.
		hi, lo := mul64(uint64(x), uint64(y))
		return hi == 0 && lo == uint64(x)*uint64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(13)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %v", p, got)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9) > 0.2 {
		t.Errorf("normal variance = %v, want ~9", variance)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Exponential(4)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-4) > 0.1 {
		t.Errorf("exponential mean = %v, want ~4", mean)
	}
	if math.Abs(variance-16) > 1 {
		t.Errorf("exponential variance = %v, want ~16", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(23)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Laplace(2, 1.5)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("laplace mean = %v, want ~2", mean)
	}
	// Var of Laplace(mu, b) is 2b^2 = 4.5.
	if math.Abs(variance-4.5) > 0.25 {
		t.Errorf("laplace variance = %v, want ~4.5", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const p, n = 0.3, 200000
	sum := 0
	for i := 0; i < n; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("negative geometric draw %d", g)
		}
		sum += g
	}
	mean := float64(sum) / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricP1(t *testing.T) {
	r := New(1)
	for i := 0; i < 10; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(37)
	const n, reps = 5, 50000
	counts := make([]int, n)
	for i := 0; i < reps; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(reps) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("position value %d appeared %d times, expected ~%.0f", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(41)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(43)
	z := NewZipf(r, 1.5, 1, 1000)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Uint64()
		if v > 1000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		counts[v]++
	}
	// Zipf must be heavily skewed toward 0.
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Errorf("zipf counts not monotone-ish: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	if float64(counts[0])/n < 0.2 {
		t.Errorf("zipf mass at 0 = %v, expected heavy head", float64(counts[0])/n)
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	r := New(1)
	for _, c := range []struct {
		s, v float64
		max  uint64
	}{{1, 1, 10}, {2, 0.5, 10}, {2, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%v,%v,%d) did not panic", c.s, c.v, c.max)
				}
			}()
			NewZipf(r, c.s, c.v, c.max)
		}()
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(47)
	n := 10
	calls := 0
	r.Shuffle(n, func(i, j int) {
		if i < 0 || j < 0 || i >= n || j > i {
			t.Fatalf("bad swap indices i=%d j=%d", i, j)
		}
		calls++
	})
	if calls != n-1 {
		t.Fatalf("Shuffle made %d swap calls, want %d", calls, n-1)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
