package frand

import "testing"

// TestSplitNMatchesSequentialSplit locks the engine-facing contract: the
// i-th stream from SplitN is identical to the i-th sequential Split, so a
// parallel engine pre-splitting cell streams consumes exactly what a serial
// loop splitting per cell would.
func TestSplitNMatchesSequentialSplit(t *testing.T) {
	a := New(42)
	b := New(42)
	streams := a.SplitN(8)
	if len(streams) != 8 {
		t.Fatalf("SplitN(8) returned %d streams", len(streams))
	}
	for i, s := range streams {
		seq := b.Split()
		for draw := 0; draw < 4; draw++ {
			if got, want := s.Uint64(), seq.Uint64(); got != want {
				t.Fatalf("stream %d draw %d = %d, want %d", i, draw, got, want)
			}
		}
	}
	// The parent streams must also end up in the same state.
	if a.Uint64() != b.Uint64() {
		t.Error("parent streams diverged after SplitN vs sequential Split")
	}
}

func TestSplitNZero(t *testing.T) {
	r := New(1)
	if got := r.SplitN(0); len(got) != 0 {
		t.Errorf("SplitN(0) = %v, want empty", got)
	}
}

// TestPermIntoMatchesPerm checks that the in-place variant draws the same
// permutation from the same stream.
func TestPermIntoMatchesPerm(t *testing.T) {
	r1 := New(7)
	r2 := New(7)
	want := r1.Perm(20)
	p := make([]int, 20)
	r2.PermInto(p)
	for i := range want {
		if want[i] != p[i] {
			t.Fatalf("PermInto[%d] = %d, want %d", i, p[i], want[i])
		}
	}
	if r1.Uint64() != r2.Uint64() {
		t.Error("streams diverged after Perm vs PermInto")
	}
}

func TestPermIntoAllocationFree(t *testing.T) {
	r := New(7)
	p := make([]int, 100)
	allocs := testing.AllocsPerRun(10, func() { r.PermInto(p) })
	if allocs != 0 {
		t.Errorf("PermInto allocates %.1f objects per run, want 0", allocs)
	}
}
