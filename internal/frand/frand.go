// Package frand provides a deterministic, seedable pseudo-random number
// generator with the distribution draws needed by the federated aggregation
// protocols and their evaluation harness.
//
// Every randomized component in this repository takes an explicit *RNG so
// that protocol runs and experiments are reproducible bit-for-bit. The
// generator is xoshiro256** seeded through SplitMix64, following the
// reference constructions of Blackman and Vigna. frand is NOT a
// cryptographic generator; the secure-aggregation substrate documents where
// a deployment must substitute a CSPRNG.
package frand

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; derive per-goroutine streams with Split.
type RNG struct {
	s0, s1, s2, s3 uint64
	// cached second output of the polar Box-Muller transform.
	normCached bool
	normValue  float64
}

// New returns an RNG seeded from the given seed. Distinct seeds yield
// independent-looking streams; the all-zero internal state is unreachable
// because SplitMix64 never emits four zero words for any seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	return r
}

// splitmix64 advances the SplitMix64 state and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Split derives a new, statistically independent RNG from this one,
// advancing this generator. Use it to hand separate streams to parallel
// workers while keeping the parent reproducible.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// SplitN derives n independent RNGs, equivalent to calling Split n times.
// Parallel engines pre-split one stream per work cell before spawning
// workers, so cell i's stream is a pure function of (seed, i) and results
// are identical at any worker count.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("frand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("frand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire multiply-shift with rejection: accept when the low half of the
	// 128-bit product clears (2^64 - n) % n, which removes modulo bias.
	thresh := -n % n
	for {
		hi, lo := mul64(r.Uint64(), n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal draw via the polar Box-Muller
// method, caching the paired output.
func (r *RNG) NormFloat64() float64 {
	if r.normCached {
		r.normCached = false
		return r.normValue
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.normValue = v * f
		r.normCached = true
		return u * f
	}
}

// Normal returns a draw from Normal(mu, sigma).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.NormFloat64()
}

// ExpFloat64 returns an exponential draw with rate 1 (mean 1) via inverse
// transform sampling.
func (r *RNG) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], avoiding log(0).
	return -math.Log(1 - r.Float64())
}

// Exponential returns an exponential draw with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	return mean * r.ExpFloat64()
}

// Laplace returns a draw from the Laplace distribution with location mu and
// scale b, the noise distribution of the classic ε-DP Laplace mechanism.
func (r *RNG) Laplace(mu, b float64) float64 {
	u := r.Float64() - 0.5
	if u < 0 {
		return mu + b*math.Log(1+2*u)
	}
	return mu - b*math.Log(1-2*u)
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, drawn by inversion. It panics if p is outside (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("frand: Geometric probability out of (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := 1 - r.Float64() // in (0, 1]
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)),
// consuming exactly the draws Perm(len(p)) would. It lets hot loops reuse a
// caller-owned buffer.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
}

// ShuffleInts shuffles the slice in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
