package frand

import "math"

// Zipf draws variates from a Zipf-Mandelbrot distribution over {0, 1, ..., imax}
// where value k has probability proportional to ((v + k)^s)^-1 with s > 1 and
// v >= 1. It uses the rejection-inversion method of Hörmann and Derflinger,
// giving O(1) expected time per draw without tabulating the distribution.
//
// The evaluation harness uses Zipf draws to model the heavy-tailed device
// metrics discussed in the paper's deployment section (§4.3), where a few
// clients report values orders of magnitude above the mode.
type Zipf struct {
	r                *RNG
	s                float64
	v                float64
	imax             float64
	oneMinusS        float64
	oneOverOneMinusS float64
	hImaxHalf        float64
	hX0              float64
	sCut             float64
}

// NewZipf returns a Zipf variate generator. It panics if s <= 1, v < 1, or
// imax == 0, which are outside the method's domain.
func NewZipf(r *RNG, s, v float64, imax uint64) *Zipf {
	if s <= 1 || v < 1 || imax == 0 {
		panic("frand: NewZipf requires s > 1, v >= 1, imax > 0")
	}
	z := &Zipf{
		r:    r,
		s:    s,
		v:    v,
		imax: float64(imax),
	}
	z.oneMinusS = 1 - s
	z.oneOverOneMinusS = 1 / z.oneMinusS
	z.hImaxHalf = z.h(z.imax + 0.5)
	z.hX0 = z.h(0.5) - math.Exp(math.Log(v)*(-s)) - z.hImaxHalf
	z.sCut = 1 - z.hInv(z.h(1.5)-math.Exp(math.Log(v+1)*(-s)))
	return z
}

// h is the antiderivative of the density envelope.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusS*math.Log(z.v+x)) * z.oneOverOneMinusS
}

// hInv is the inverse of h.
func (z *Zipf) hInv(x float64) float64 {
	return math.Exp(z.oneOverOneMinusS*math.Log(z.oneMinusS*x)) - z.v
}

// Uint64 returns the next Zipf-distributed variate in [0, imax].
func (z *Zipf) Uint64() uint64 {
	for {
		ur := z.hImaxHalf + z.r.Float64()*z.hX0
		x := z.hInv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.sCut {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.s) {
			return uint64(k)
		}
	}
}
