package federated

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

func TestStragglerConfigValidation(t *testing.T) {
	cases := []Config{
		{Bits: 8, StragglerRate: 1},
		{Bits: 8, StragglerRate: -0.1},
		{Bits: 8, StragglerDelay: -1},
		{Bits: 8, RoundDeadline: -1},
	}
	for i, cfg := range cases {
		if _, err := NewCoordinator(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestDeadlineCutsStragglers(t *testing.T) {
	clients, truth := population(t, 20000, 10, 70)
	co, err := NewCoordinator(Config{
		Bits: 10, StragglerRate: 0.2, StragglerDelay: 30, RoundDeadline: 10, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := core.GeometricProbs(10, 1)
	res, err := co.RunRound(clients, feature, probs)
	if err != nil {
		t.Fatal(err)
	}
	// ~20% of clients are stragglers shifted 30 simulated minutes; the
	// 10-minute deadline must cut nearly all of them.
	if res.Stats.Stragglers < 3500 || res.Stats.Stragglers > 4500 {
		t.Errorf("stragglers = %d, want ~4000", res.Stats.Stragglers)
	}
	if res.Stats.Latency <= 0 || res.Stats.Latency > 10 {
		t.Errorf("round latency %v, want within the 10-minute deadline", res.Stats.Latency)
	}
	// The estimate still holds on the surviving ~80%.
	if nrmse := math.Abs(res.Estimate-truth) / truth; nrmse > 0.05 {
		t.Errorf("estimate %v vs truth %v under straggler cuts", res.Estimate, truth)
	}
}

func TestNoDeadlineWaitsForStragglers(t *testing.T) {
	clients, _ := population(t, 5000, 10, 72)
	co, err := NewCoordinator(Config{
		Bits: 10, StragglerRate: 0.1, StragglerDelay: 60, Seed: 73,
	})
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := core.GeometricProbs(10, 1)
	res, err := co.RunRound(clients, feature, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stragglers != 0 {
		t.Errorf("stragglers cut without a deadline: %d", res.Stats.Stragglers)
	}
	// The round's latency is set by the slowest straggler (60+ minutes).
	if res.Stats.Latency < 60 {
		t.Errorf("round latency %v, expected straggler-dominated (>60)", res.Stats.Latency)
	}
	if res.Stats.Accepted != 5000 {
		t.Errorf("accepted %d", res.Stats.Accepted)
	}
}

func TestDeadlineShortensRounds(t *testing.T) {
	clients, _ := population(t, 5000, 10, 74)
	probs, _ := core.GeometricProbs(10, 1)
	run := func(deadline float64) float64 {
		co, err := NewCoordinator(Config{
			Bits: 10, StragglerRate: 0.1, StragglerDelay: 60, RoundDeadline: deadline, Seed: 75,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.RunRound(clients, feature, probs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Latency
	}
	if with, without := run(8), run(0); with >= without {
		t.Errorf("deadline latency %v not below open-ended %v", with, without)
	}
}
