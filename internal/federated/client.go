// Package federated orchestrates bit-pushing across a population of
// clients the way the paper's deployment does (§4.3): cohort selection,
// per-round bit assignment, dropout and straggler tolerance, auto-adjusted
// sampling under dropout, minimum cohort sizes, privacy metering, and the
// multiple-values-per-client semantics the deployment settled on.
package federated

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/frand"
)

// Client is a federated participant. Implementations hold private data and
// answer bit requests; only single bits ever cross this interface, which is
// the protocol's privacy boundary.
type Client interface {
	// ID identifies the client for metering and deduplication.
	ID() string
	// Report produces the client's report for a feature when asked to
	// disclose bit `bit`. ok=false means the client has no value for the
	// feature (it abstains). Honest clients answer the assigned bit;
	// byzantine ones may return a different bit index or a fabricated
	// value — the coordinator decides what to accept.
	Report(feature string, bit int, r *frand.RNG) (rep core.Report, ok bool)
}

// MultiValueMode selects how a client with several local observations of a
// feature answers a single-value query (§4.3, "Aggregating multiple local
// values per feature").
type MultiValueMode int

const (
	// SampleOne reports a uniformly sampled local value — the semantics
	// the deployment adopted ("in our setting, it is appropriate to
	// aggregate a single value per client" with sampling-defined ground
	// truth).
	SampleOne MultiValueMode = iota
	// LocalMean locally aggregates to the mean of the client's values
	// before bit extraction.
	LocalMean
)

// String implements fmt.Stringer.
func (m MultiValueMode) String() string {
	switch m {
	case SampleOne:
		return "sample-one"
	case LocalMean:
		return "local-mean"
	default:
		return fmt.Sprintf("MultiValueMode(%d)", int(m))
	}
}

// SimClient is an honest in-process client holding encoded values for one
// or more features.
type SimClient struct {
	Name string
	// Values maps feature name to the client's local observations.
	Values map[string][]uint64
	// Mode selects multi-value semantics; zero value is SampleOne.
	Mode MultiValueMode
}

// ID implements Client.
func (c *SimClient) ID() string { return c.Name }

// Report implements Client: it resolves the feature to a single local
// value per Mode and discloses the requested bit.
func (c *SimClient) Report(feature string, bit int, r *frand.RNG) (core.Report, bool) {
	vals := c.Values[feature]
	if len(vals) == 0 {
		return core.Report{}, false
	}
	var v uint64
	switch c.Mode {
	case LocalMean:
		var sum uint64
		for _, x := range vals {
			sum += x
		}
		v = sum / uint64(len(vals))
	default:
		v = vals[r.Intn(len(vals))]
	}
	return core.Report{Bit: bit, Value: (v >> uint(bit)) & 1}, true
}

// ByzantineClient models the poisoning adversary of §5: it ignores the
// assigned bit and always claims the most significant bit is set, trying
// to bias the estimate upward. Under central randomness the coordinator
// rejects the off-assignment report; under local randomness it cannot.
type ByzantineClient struct {
	Name string
	// TargetBit is the bit the adversary always claims to report (usually
	// Bits-1, the most significant).
	TargetBit int
}

// ID implements Client.
func (c *ByzantineClient) ID() string { return c.Name }

// Report implements Client, returning a fabricated one at TargetBit
// regardless of the assignment.
func (c *ByzantineClient) Report(string, int, *frand.RNG) (core.Report, bool) {
	return core.Report{Bit: c.TargetBit, Value: 1}, true
}

// NewPopulation wraps encoded per-client values of a single feature into
// SimClients, a convenience for experiments.
func NewPopulation(feature string, values []uint64) []Client {
	clients := make([]Client, len(values))
	for i, v := range values {
		clients[i] = &SimClient{
			Name:   fmt.Sprintf("client-%d", i),
			Values: map[string][]uint64{feature: {v}},
		}
	}
	return clients
}
