package federated

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestSelectionChiSquareCentralNearZero(t *testing.T) {
	clients, _ := population(t, 5000, 10, 90)
	co, err := NewCoordinator(Config{Bits: 10, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.EstimateMeanSingleRound(clients, feature, 1)
	if err != nil {
		t.Fatal(err)
	}
	stat, dof := res.SelectionChiSquare()
	if dof != 9 {
		t.Fatalf("dof = %d", dof)
	}
	// QMC allocation: counts exact to within rounding.
	if stat > 1 {
		t.Fatalf("central-randomness chi-square %v, want ~0", stat)
	}
	if res.SelectionAnomalous(5) {
		t.Fatal("clean central round flagged")
	}
}

func TestSelectionChiSquareHonestLocalInRange(t *testing.T) {
	clients, _ := population(t, 10000, 10, 92)
	flagged := 0
	for seed := uint64(0); seed < 20; seed++ {
		co, err := NewCoordinator(Config{Bits: 10, Randomness: core.LocalRandomness, Seed: 93 + seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.EstimateMeanSingleRound(clients, feature, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.SelectionAnomalous(5) {
			flagged++
		}
	}
	if flagged > 1 {
		t.Fatalf("honest local rounds flagged %d of 20 times", flagged)
	}
}

func TestSelectionChiSquareDetectsPoisoning(t *testing.T) {
	clients, _ := population(t, 10000, 12, 94)
	// 5% byzantine clients always report the top bit. (At ~3% the count
	// skew sits at the z=5 detection boundary for this cohort size; the
	// detector's power grows with both the byzantine fraction and n.)
	for i := 0; i < 500; i++ {
		clients = append(clients, &ByzantineClient{Name: "evil", TargetBit: 11})
	}
	detected := 0
	for seed := uint64(0); seed < 10; seed++ {
		co, err := NewCoordinator(Config{Bits: 12, Randomness: core.LocalRandomness, Seed: 95 + seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.EstimateMeanSingleRound(clients, feature, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if res.SelectionAnomalous(5) {
			detected++
		}
	}
	if detected < 9 {
		t.Fatalf("3%% local poisoning detected in only %d of 10 rounds", detected)
	}
}

func TestSelectionChiSquareZeroProbBit(t *testing.T) {
	// Reports on a zero-probability bit are maximal evidence.
	res := &RoundResult{
		Result: core.Result{Counts: []int{10, 0, 5}},
		Probs:  []float64{0.5, 0.5, 0},
	}
	stat, _ := res.SelectionChiSquare()
	if !math.IsInf(stat, 1) {
		t.Fatalf("stat = %v, want +Inf", stat)
	}
	if !res.SelectionAnomalous(5) {
		t.Fatal("zero-prob-bit reports not flagged")
	}
}

func TestSelectionChiSquareEmptyRound(t *testing.T) {
	res := &RoundResult{
		Result: core.Result{Counts: []int{0, 0}},
		Probs:  []float64{0.5, 0.5},
	}
	stat, dof := res.SelectionChiSquare()
	if stat != 0 || dof != 0 {
		t.Fatalf("empty round stat=%v dof=%d", stat, dof)
	}
	if res.SelectionAnomalous(5) {
		t.Fatal("empty round flagged")
	}
}
