package federated

import (
	"errors"
	"fmt"
)

// ErrNoFeatures reports an empty campaign.
var ErrNoFeatures = errors.New("federated: campaign has no features")

// FeatureResult is one feature's outcome within a campaign.
type FeatureResult struct {
	Feature string
	Mean    *MeanResult
	// Err records a per-feature failure (e.g. cohort below minimum);
	// other features still complete.
	Err error
}

// CampaignResult maps feature names to their outcomes, preserving the
// requested order in Order.
type CampaignResult struct {
	Order   []string
	Results map[string]*FeatureResult
}

// Succeeded returns the number of features that produced an estimate.
func (c *CampaignResult) Succeeded() int {
	n := 0
	for _, r := range c.Results {
		if r.Err == nil {
			n++
		}
	}
	return n
}

// RunCampaign estimates the mean of several features over the same
// population, one adaptive two-round protocol per feature. Deployments
// monitor many device-health metrics at once (§4.3); each feature costs
// every participating client one disclosed bit, so the ledger (when
// configured) arbitrates how many features a client can serve before its
// budget runs out — privacy metering composing across features (§1.1).
//
// A feature that fails (for example, dropping below the minimum cohort
// once budgets are exhausted) is recorded in its FeatureResult.Err; the
// campaign continues with the remaining features and only reports an
// error if every feature failed.
func (co *Coordinator) RunCampaign(clients []Client, features []string) (*CampaignResult, error) {
	if len(features) == 0 {
		return nil, ErrNoFeatures
	}
	seen := make(map[string]bool, len(features))
	out := &CampaignResult{Results: make(map[string]*FeatureResult, len(features))}
	for _, f := range features {
		if seen[f] {
			return nil, fmt.Errorf("federated: duplicate feature %q in campaign", f)
		}
		seen[f] = true
		out.Order = append(out.Order, f)
		fr := &FeatureResult{Feature: f}
		fr.Mean, fr.Err = co.EstimateMean(clients, f)
		out.Results[f] = fr
	}
	if out.Succeeded() == 0 {
		return out, fmt.Errorf("federated: every feature in the campaign failed; first: %w", out.Results[features[0]].Err)
	}
	return out, nil
}
