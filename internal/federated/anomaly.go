package federated

import (
	"math"
)

// SelectionChiSquare measures how far the round's per-bit report counts
// deviate from the expected n·p_j allocation, as a chi-square statistic
// with len(probs)-1 degrees of freedom.
//
// Under central randomness the counts are exact by construction and the
// statistic is ~0. Under local randomness honest clients produce
// multinomial counts (statistic ≈ dof in expectation), while the §5
// adversary — clients that "pick the most significant bit and
// deterministically send a 1" — inflates the target bit's count and the
// statistic with it. This gives the server a detector for bit-selection
// poisoning that needs no knowledge of the data.
func (r *RoundResult) SelectionChiSquare() (stat float64, dof int) {
	total := 0
	for _, c := range r.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	for j, p := range r.Probs {
		expected := p * float64(total)
		if expected < 1e-12 {
			// A zero-probability bit with reports is itself maximal
			// evidence of tampering.
			if r.Counts[j] > 0 {
				stat = math.Inf(1)
			}
			continue
		}
		d := float64(r.Counts[j]) - expected
		stat += d * d / expected
	}
	return stat, len(r.Probs) - 1
}

// SelectionAnomalous reports whether the round's bit-selection counts are
// implausible for honest multinomial sampling: the chi-square statistic
// exceeds its mean by z standard deviations (mean dof, variance 2·dof for
// large dof). z = 5 keeps false positives negligible across daily rounds.
func (r *RoundResult) SelectionAnomalous(z float64) bool {
	stat, dof := r.SelectionChiSquare()
	if dof <= 0 {
		return false
	}
	return stat > float64(dof)+z*math.Sqrt(2*float64(dof))
}
