package federated

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Metric names the coordinator publishes when Config.Metrics is set.
// Report outcomes are labeled by result: accepted, dropped, straggler,
// abstained, rejected, denied.
const (
	MetricRounds       = "fed_rounds_total"
	MetricReports      = "fed_reports_total"
	MetricRoundLatency = "fed_round_latency_minutes"
)

// Errors returned by the coordinator.
var (
	ErrConfig = errors.New("federated: invalid configuration")
	ErrCohort = errors.New("federated: cohort below minimum size")
)

// Config parametrizes a Coordinator.
type Config struct {
	// Bits is the protocol bit depth.
	Bits int
	// MinCohort aborts a round that gathers fewer accepted reports,
	// enforcing the privacy floor of §4.3 ("enforce a minimum cohort size
	// for privacy"). Zero disables the check.
	MinCohort int
	// DropoutRate is the simulated probability that an invited client
	// never responds (§4.3, "client devices can drop out at any point").
	DropoutRate float64
	// StragglerRate and RoundDeadline simulate the §4.3 latency model:
	// a StragglerRate fraction of responding clients take StragglerDelay
	// (simulated minutes) instead of the ~1-minute baseline, and the
	// round stops waiting at RoundDeadline — late reports are discarded,
	// not blocked on ("It does not require all devices to be available at
	// query time"). A zero RoundDeadline waits for everyone.
	StragglerRate  float64
	StragglerDelay float64
	RoundDeadline  float64
	// RR optionally applies ε-LDP randomized response to each bit. In a
	// deployment the client SDK applies this transform before transmission
	// (see internal/transport, where it runs on the client); the in-process
	// coordinator applies it at report production, which is statistically
	// identical.
	RR *ldp.RandomizedResponse
	// SquashThreshold zeroes small-magnitude bit means (§3.3).
	SquashThreshold float64
	// Randomness selects central (default, poisoning-resistant) or local
	// bit selection.
	Randomness core.RandomnessMode
	// Gamma, Alpha, Delta are the Algorithm 2 knobs; zero values select
	// the paper defaults (0.5, 0.5, 1/3).
	Gamma, Alpha, Delta float64
	// AutoAdjust, with TargetReports > 0, inflates the number of invited
	// clients by the observed dropout rate so the round still lands near
	// TargetReports accepted reports (§4.3, "the bit sampling
	// probabilities were auto-adjusted based on the dropout rate").
	AutoAdjust bool
	// TargetReports is the desired number of accepted reports per round;
	// 0 invites every available client.
	TargetReports int
	// Ledger, when non-nil, meters each client's disclosure and skips
	// clients whose budget is exhausted.
	Ledger *meter.Ledger
	// Metrics, when non-nil, records per-round participation outcomes and
	// simulated round latency into the registry (see the Metric* names).
	Metrics *obs.Registry
	// Tracer, when non-nil, records one "fed.round" span per RunRound with
	// the participation tallies as attributes. The coordinator is a
	// synchronous in-process simulation, so spans are roots (no context
	// plumbing) and the span's duration is real wall-clock, not the
	// simulated minutes in Stats.Latency.
	Tracer *trace.Recorder
	// Seed makes the coordinator deterministic.
	Seed uint64
}

func (c *Config) validate() error {
	if c.Bits < 1 {
		return fmt.Errorf("%w: Bits=%d", ErrConfig, c.Bits)
	}
	if c.DropoutRate < 0 || c.DropoutRate >= 1 || math.IsNaN(c.DropoutRate) {
		return fmt.Errorf("%w: DropoutRate=%v", ErrConfig, c.DropoutRate)
	}
	if c.MinCohort < 0 || c.TargetReports < 0 {
		return fmt.Errorf("%w: MinCohort=%d TargetReports=%d", ErrConfig, c.MinCohort, c.TargetReports)
	}
	if c.StragglerRate < 0 || c.StragglerRate >= 1 || math.IsNaN(c.StragglerRate) {
		return fmt.Errorf("%w: StragglerRate=%v", ErrConfig, c.StragglerRate)
	}
	if c.StragglerDelay < 0 || c.RoundDeadline < 0 {
		return fmt.Errorf("%w: StragglerDelay=%v RoundDeadline=%v", ErrConfig, c.StragglerDelay, c.RoundDeadline)
	}
	return nil
}

// Stats summarizes client participation in one round.
type Stats struct {
	Invited    int // clients the round reached out to
	Dropped    int // invited clients that never responded
	Stragglers int // reports that missed the round deadline and were cut
	Abstained  int // responded but held no value for the feature
	Rejected   int // reports discarded for answering an unassigned bit
	Denied     int // clients skipped because their privacy budget ran out
	Accepted   int // reports that entered the aggregate
	// Latency is the simulated wall-clock the round took: the deadline
	// when stragglers were cut, otherwise the slowest accepted report.
	Latency float64
}

// RoundResult is one round's aggregate plus participation detail.
type RoundResult struct {
	core.Result
	Stats Stats
	Probs []float64
}

// MeanResult is the outcome of a two-round adaptive estimation.
type MeanResult struct {
	core.Result
	Round1, Round2 *RoundResult
}

// Coordinator drives bit-pushing rounds over a client population. It is
// not safe for concurrent use; run one estimation at a time.
type Coordinator struct {
	cfg Config
	rng *frand.RNG
	// dropoutEWMA tracks the observed dropout rate for auto-adjustment.
	dropoutEWMA float64
	haveEWMA    bool
}

// NewCoordinator validates the configuration and returns a coordinator.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Coordinator{cfg: cfg, rng: frand.New(cfg.Seed)}, nil
}

// ObservedDropout returns the coordinator's running dropout estimate.
func (co *Coordinator) ObservedDropout() float64 { return co.dropoutEWMA }

// coreConfig builds the aggregation config for a given allocation.
func (co *Coordinator) coreConfig(probs []float64) core.Config {
	return core.Config{
		Bits:            co.cfg.Bits,
		Probs:           probs,
		RR:              co.cfg.RR,
		Randomness:      co.cfg.Randomness,
		SquashThreshold: co.cfg.SquashThreshold,
	}
}

// RunRound executes one bit-pushing round over the given clients with the
// given allocation: cohort selection, assignment, collection with dropout
// and metering, and aggregation.
func (co *Coordinator) RunRound(clients []Client, feature string, probs []float64) (*RoundResult, error) {
	sp := co.cfg.Tracer.StartSpan("fed.round")
	defer sp.End()
	sp.Attr("feature", feature)
	cfg := co.coreConfig(probs)
	invited := co.selectCohort(clients)
	stats := Stats{Invited: len(invited)}

	// Assign bits to the invited cohort.
	var assignment []int
	normalized, err := core.Normalize(probs)
	if err != nil {
		return nil, err
	}
	if co.cfg.Randomness == core.LocalRandomness {
		assignment = core.AssignLocal(normalized, len(invited), co.rng)
	} else {
		counts, err := core.Allocate(normalized, len(invited))
		if err != nil {
			return nil, err
		}
		assignment = core.Assign(counts, co.rng)
	}

	reports := make([]core.Report, 0, len(invited))
	for i, cl := range invited {
		if co.rng.Bernoulli(co.cfg.DropoutRate) {
			stats.Dropped++
			continue
		}
		// Simulated response latency: an exponential ~1-minute baseline,
		// with stragglers shifted by StragglerDelay. Reports landing past
		// the round deadline are cut, not waited for.
		latency := co.rng.Exponential(1)
		if co.cfg.StragglerRate > 0 && co.rng.Bernoulli(co.cfg.StragglerRate) {
			latency += co.cfg.StragglerDelay
		}
		if co.cfg.RoundDeadline > 0 && latency > co.cfg.RoundDeadline {
			stats.Stragglers++
			continue
		}
		if latency > stats.Latency {
			stats.Latency = latency
		}
		if co.cfg.Ledger != nil {
			eps := 0.0
			if co.cfg.RR != nil {
				eps = co.cfg.RR.Eps
			}
			if err := co.cfg.Ledger.Charge(cl.ID(), feature, 1, eps); err != nil {
				stats.Denied++
				continue
			}
		}
		rep, ok := cl.Report(feature, assignment[i], co.rng)
		if !ok {
			stats.Abstained++
			continue
		}
		// Central randomness: the server knows which bit it assigned and
		// discards off-assignment reports — the §5 poisoning defence.
		if co.cfg.Randomness != core.LocalRandomness && rep.Bit != assignment[i] {
			stats.Rejected++
			continue
		}
		if co.cfg.RR != nil {
			rep.Value = co.cfg.RR.Apply(rep.Value, co.rng)
		}
		reports = append(reports, rep)
	}
	stats.Accepted = len(reports)

	// Update the dropout estimate for auto-adjustment.
	if stats.Invited > 0 {
		observed := float64(stats.Dropped) / float64(stats.Invited)
		if co.haveEWMA {
			co.dropoutEWMA = 0.7*co.dropoutEWMA + 0.3*observed
		} else {
			co.dropoutEWMA = observed
			co.haveEWMA = true
		}
	}

	co.recordStats(stats)
	sp.AttrInt("invited", int64(stats.Invited))
	sp.AttrInt("accepted", int64(stats.Accepted))
	sp.AttrInt("dropped", int64(stats.Dropped))
	sp.AttrInt("stragglers", int64(stats.Stragglers))
	if co.cfg.RR != nil {
		sp.AttrFloat("epsilon", co.cfg.RR.Eps)
	}
	if co.cfg.MinCohort > 0 && stats.Accepted < co.cfg.MinCohort {
		sp.Attr("result", "cohort_too_small")
		return nil, fmt.Errorf("%w: %d accepted reports, need %d", ErrCohort, stats.Accepted, co.cfg.MinCohort)
	}
	res, err := core.Aggregate(cfg, reports)
	if err != nil {
		return nil, err
	}
	sp.AttrFloat("estimate", res.Estimate)
	return &RoundResult{Result: *res, Stats: stats, Probs: normalized}, nil
}

// recordStats mirrors one round's participation tallies into the
// configured registry.
func (co *Coordinator) recordStats(stats Stats) {
	reg := co.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Counter(MetricRounds, "Bit-pushing rounds executed.").Inc()
	outcomes := reg.CounterVec(MetricReports,
		"Per-client round outcomes, by result.", "result")
	outcomes.With("accepted").Add(uint64(stats.Accepted))
	outcomes.With("dropped").Add(uint64(stats.Dropped))
	outcomes.With("straggler").Add(uint64(stats.Stragglers))
	outcomes.With("abstained").Add(uint64(stats.Abstained))
	outcomes.With("rejected").Add(uint64(stats.Rejected))
	outcomes.With("denied").Add(uint64(stats.Denied))
	reg.Histogram(MetricRoundLatency,
		"Simulated round wall-clock in minutes.",
		[]float64{0.5, 1, 2, 5, 10, 20, 60}).Observe(stats.Latency)
}

// selectCohort picks which clients to invite. With TargetReports set it
// invites a random subset sized to land near the target after expected
// dropout (inflating by the observed rate when AutoAdjust is on).
func (co *Coordinator) selectCohort(clients []Client) []Client {
	if co.cfg.TargetReports <= 0 || co.cfg.TargetReports >= len(clients) {
		return clients
	}
	want := float64(co.cfg.TargetReports)
	drop := 0.0
	if co.cfg.AutoAdjust {
		drop = co.dropoutEWMA
	}
	inviteN := int(math.Ceil(want / math.Max(1e-9, 1-drop)))
	if inviteN > len(clients) {
		inviteN = len(clients)
	}
	perm := co.rng.Perm(len(clients))
	invited := make([]Client, inviteN)
	for i := 0; i < inviteN; i++ {
		invited[i] = clients[perm[i]]
	}
	return invited
}

// EstimateMean runs the full two-round adaptive protocol (Algorithm 2)
// over the population: a δ fraction of clients in round 1 under the
// geometric allocation, the rest in round 2 under the learned allocation,
// with both rounds' reports pooled.
func (co *Coordinator) EstimateMean(clients []Client, feature string) (*MeanResult, error) {
	if err := co.cfg.validate(); err != nil {
		return nil, err
	}
	if len(clients) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 clients", ErrConfig)
	}
	delta := co.cfg.Delta
	if delta == 0 {
		delta = 1.0 / 3.0
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("%w: Delta=%v", ErrConfig, co.cfg.Delta)
	}
	gamma := co.cfg.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	alpha := co.cfg.Alpha
	if alpha == 0 {
		alpha = 0.5
	}

	n1 := int(math.Round(delta * float64(len(clients))))
	if n1 < 1 {
		n1 = 1
	}
	if n1 >= len(clients) {
		n1 = len(clients) - 1
	}
	perm := co.rng.Perm(len(clients))
	round1Clients := make([]Client, n1)
	round2Clients := make([]Client, len(clients)-n1)
	for i, idx := range perm {
		if i < n1 {
			round1Clients[i] = clients[idx]
		} else {
			round2Clients[i-n1] = clients[idx]
		}
	}

	probs1, err := core.GeometricProbs(co.cfg.Bits, gamma)
	if err != nil {
		return nil, err
	}
	res1, err := co.RunRound(round1Clients, feature, probs1)
	if err != nil {
		return nil, err
	}
	var probs2 []float64
	if co.cfg.RR != nil {
		probs2, err = core.LearnedProbsDP(&res1.Result)
	} else {
		probs2, err = core.LearnedProbs(&res1.Result, alpha)
	}
	if err != nil {
		return nil, err
	}
	res2, err := co.RunRound(round2Clients, feature, probs2)
	if err != nil {
		return nil, err
	}
	pooled, err := core.PoolAdaptive(co.coreConfig(probs1), probs2, &res1.Result, &res2.Result)
	if err != nil {
		return nil, err
	}
	return &MeanResult{Result: *pooled, Round1: res1, Round2: res2}, nil
}

// EstimateMeanSingleRound runs one weighted round (p_j ∝ 2^{γj}) over the
// whole population, the paper's "weighted" method.
func (co *Coordinator) EstimateMeanSingleRound(clients []Client, feature string, gamma float64) (*RoundResult, error) {
	probs, err := core.GeometricProbs(co.cfg.Bits, gamma)
	if err != nil {
		return nil, err
	}
	return co.RunRound(clients, feature, probs)
}
