package federated

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/meter"
	"repro/internal/workload"
)

// multiFeaturePopulation builds clients each holding values for several
// features.
func multiFeaturePopulation(t *testing.T, n int, features map[string]workload.Generator, bits int, seed uint64) ([]Client, map[string]float64) {
	t.Helper()
	codec := fixedpoint.MustCodec(bits, 0, 1)
	r := frand.New(seed)
	perFeature := make(map[string][]uint64, len(features))
	truths := make(map[string]float64, len(features))
	for name, gen := range features {
		encoded := codec.EncodeAll(gen.Sample(r, n))
		perFeature[name] = encoded
		truths[name] = fixedpoint.Mean(encoded)
	}
	clients := make([]Client, n)
	for i := 0; i < n; i++ {
		vals := make(map[string][]uint64, len(features))
		for name := range features {
			vals[name] = []uint64{perFeature[name][i]}
		}
		clients[i] = &SimClient{Name: fmt.Sprintf("client-%d", i), Values: vals}
	}
	return clients, truths
}

func TestCampaignEstimatesAllFeatures(t *testing.T) {
	features := map[string]workload.Generator{
		"latency": workload.Normal{Mu: 800, Sigma: 90},
		"memory":  workload.Normal{Mu: 300, Sigma: 40},
		"battery": workload.Uniform{Lo: 0, Hi: 1000},
	}
	clients, truths := multiFeaturePopulation(t, 8000, features, 12, 1)
	co, err := NewCoordinator(Config{Bits: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.RunCampaign(clients, []string{"latency", "memory", "battery"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded() != 3 {
		t.Fatalf("succeeded = %d", res.Succeeded())
	}
	for name, truth := range truths {
		fr := res.Results[name]
		if fr.Err != nil {
			t.Fatalf("%s: %v", name, fr.Err)
		}
		if nrmse := math.Abs(fr.Mean.Estimate-truth) / truth; nrmse > 0.06 {
			t.Errorf("%s estimate %v vs truth %v", name, fr.Mean.Estimate, truth)
		}
	}
	if len(res.Order) != 3 || res.Order[0] != "latency" {
		t.Errorf("order = %v", res.Order)
	}
}

func TestCampaignValidation(t *testing.T) {
	co, err := NewCoordinator(Config{Bits: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.RunCampaign(nil, nil); !errors.Is(err, ErrNoFeatures) {
		t.Errorf("empty campaign: %v", err)
	}
	clients := []Client{&SimClient{Name: "a"}, &SimClient{Name: "b"}}
	if _, err := co.RunCampaign(clients, []string{"f", "f"}); err == nil {
		t.Error("duplicate feature accepted")
	}
}

func TestCampaignBudgetComposesAcrossFeatures(t *testing.T) {
	features := map[string]workload.Generator{
		"a": workload.Normal{Mu: 100, Sigma: 10},
		"b": workload.Normal{Mu: 200, Sigma: 20},
		"c": workload.Normal{Mu: 300, Sigma: 30},
	}
	clients, _ := multiFeaturePopulation(t, 500, features, 10, 4)
	rr, err := ldp.NewRandomizedResponse(1)
	if err != nil {
		t.Fatal(err)
	}
	// Budget allows ε=2 total at ε=1 per collection: feature three must be
	// denied for every client and fail on the cohort floor.
	ledger := meter.NewLedger(meter.Policy{MaxBitsPerValue: 1, MaxEpsilon: 2})
	co, err := NewCoordinator(Config{
		Bits: 10, RR: rr, Ledger: ledger, MinCohort: 50, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.RunCampaign(clients, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded() != 2 {
		t.Fatalf("succeeded = %d, want 2", res.Succeeded())
	}
	if res.Results["c"].Err == nil {
		t.Fatal("third feature succeeded despite exhausted budgets")
	}
	if !errors.Is(res.Results["c"].Err, ErrCohort) {
		t.Errorf("third feature error = %v, want ErrCohort", res.Results["c"].Err)
	}
	if got := ledger.EpsilonSpent("client-0"); got != 2 {
		t.Errorf("client-0 spent ε=%v, want 2", got)
	}
}

func TestCampaignAllFeaturesFail(t *testing.T) {
	clients := []Client{
		&SimClient{Name: "a", Values: map[string][]uint64{"x": {1}}},
		&SimClient{Name: "b", Values: map[string][]uint64{"x": {2}}},
	}
	co, err := NewCoordinator(Config{Bits: 8, MinCohort: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.RunCampaign(clients, []string{"x"})
	if err == nil {
		t.Fatal("campaign with universally failing feature returned nil error")
	}
	if res == nil || res.Results["x"].Err == nil {
		t.Fatal("per-feature error not recorded")
	}
}
