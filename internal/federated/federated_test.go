package federated

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/meter"
	"repro/internal/stats"
	"repro/internal/workload"
)

const feature = "latency_ms"

func population(t *testing.T, n, bits int, seed uint64) ([]Client, float64) {
	t.Helper()
	vals := workload.Normal{Mu: 500, Sigma: 80}.Sample(frand.New(seed), n)
	encoded := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(vals)
	return NewPopulation(feature, encoded), fixedpoint.Mean(encoded)
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Bits: 0},
		{Bits: 8, DropoutRate: 1},
		{Bits: 8, DropoutRate: -0.5},
		{Bits: 8, MinCohort: -1},
		{Bits: 8, TargetReports: -1},
	}
	for i, cfg := range cases {
		if _, err := NewCoordinator(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestSimClientSampleOne(t *testing.T) {
	c := &SimClient{Name: "c", Values: map[string][]uint64{feature: {0b101}}}
	r := frand.New(1)
	rep, ok := c.Report(feature, 2, r)
	if !ok || rep.Bit != 2 || rep.Value != 1 {
		t.Fatalf("Report = %+v, %v", rep, ok)
	}
	rep, _ = c.Report(feature, 1, r)
	if rep.Value != 0 {
		t.Fatalf("bit 1 of 0b101 reported as %d", rep.Value)
	}
	if _, ok := c.Report("unknown", 0, r); ok {
		t.Fatal("client reported on a feature it lacks")
	}
}

func TestSimClientLocalMean(t *testing.T) {
	c := &SimClient{
		Name:   "c",
		Values: map[string][]uint64{feature: {4, 6, 8}},
		Mode:   LocalMean,
	}
	// Local mean = 6 = 0b110.
	r := frand.New(2)
	rep, _ := c.Report(feature, 1, r)
	if rep.Value != 1 {
		t.Fatalf("bit 1 of local mean 6 = %d", rep.Value)
	}
	rep, _ = c.Report(feature, 0, r)
	if rep.Value != 0 {
		t.Fatalf("bit 0 of local mean 6 = %d", rep.Value)
	}
}

func TestMultiValueModeString(t *testing.T) {
	if SampleOne.String() != "sample-one" || LocalMean.String() != "local-mean" {
		t.Error("mode strings wrong")
	}
	if MultiValueMode(5).String() == "" {
		t.Error("unknown mode should stringify")
	}
}

func TestSingleRoundEstimate(t *testing.T) {
	clients, truth := population(t, 10000, 12, 3)
	co, err := NewCoordinator(Config{Bits: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.EstimateMeanSingleRound(clients, feature, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nrmse := math.Abs(res.Estimate-truth) / truth; nrmse > 0.05 {
		t.Fatalf("single-round estimate %v vs truth %v (nrmse %v)", res.Estimate, truth, nrmse)
	}
	if res.Stats.Accepted != 10000 {
		t.Errorf("accepted %d reports", res.Stats.Accepted)
	}
}

func TestAdaptiveEstimate(t *testing.T) {
	clients, truth := population(t, 10000, 16, 5)
	co, err := NewCoordinator(Config{Bits: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.EstimateMean(clients, feature)
	if err != nil {
		t.Fatal(err)
	}
	if nrmse := math.Abs(res.Estimate-truth) / truth; nrmse > 0.05 {
		t.Fatalf("adaptive estimate %v vs truth %v", res.Estimate, truth)
	}
	if res.Round1.Stats.Invited+res.Round2.Stats.Invited != 10000 {
		t.Errorf("rounds invited %d + %d clients", res.Round1.Stats.Invited, res.Round2.Stats.Invited)
	}
	// Round 2 must concentrate on the active bits (values < 1024).
	for j := 11; j < 16; j++ {
		if res.Round2.Probs[j] != 0 {
			t.Errorf("round-2 prob for vacuous bit %d = %v", j, res.Round2.Probs[j])
		}
	}
}

func TestDropoutToleratedAndTracked(t *testing.T) {
	clients, truth := population(t, 20000, 12, 7)
	co, err := NewCoordinator(Config{Bits: 12, DropoutRate: 0.3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.EstimateMean(clients, feature)
	if err != nil {
		t.Fatal(err)
	}
	if nrmse := math.Abs(res.Estimate-truth) / truth; nrmse > 0.05 {
		t.Fatalf("estimate under 30%% dropout: %v vs %v", res.Estimate, truth)
	}
	if d := co.ObservedDropout(); math.Abs(d-0.3) > 0.05 {
		t.Errorf("observed dropout %v, want ~0.3", d)
	}
	dropped := res.Round1.Stats.Dropped + res.Round2.Stats.Dropped
	if dropped < 5000 || dropped > 7000 {
		t.Errorf("dropped %d of 20000, want ~6000", dropped)
	}
}

func TestMinCohortEnforced(t *testing.T) {
	clients, _ := population(t, 50, 8, 9)
	co, err := NewCoordinator(Config{Bits: 8, MinCohort: 100, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.EstimateMeanSingleRound(clients, feature, 1); !errors.Is(err, ErrCohort) {
		t.Fatalf("err = %v, want ErrCohort", err)
	}
}

func TestAutoAdjustHitsTargetUnderDropout(t *testing.T) {
	clients, _ := population(t, 50000, 10, 11)
	co, err := NewCoordinator(Config{
		Bits: 10, DropoutRate: 0.4, TargetReports: 5000, AutoAdjust: true, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := core.GeometricProbs(10, 1)
	// Round 1 establishes the dropout estimate; later rounds must land
	// near the target.
	if _, err := co.RunRound(clients, feature, probs); err != nil {
		t.Fatal(err)
	}
	var accepted stats.Stream
	for i := 0; i < 10; i++ {
		res, err := co.RunRound(clients, feature, probs)
		if err != nil {
			t.Fatal(err)
		}
		accepted.Add(float64(res.Stats.Accepted))
	}
	if math.Abs(accepted.Mean()-5000) > 300 {
		t.Fatalf("auto-adjusted rounds accepted %v reports on average, want ~5000", accepted.Mean())
	}
}

func TestNoAutoAdjustFallsShort(t *testing.T) {
	clients, _ := population(t, 50000, 10, 13)
	co, err := NewCoordinator(Config{
		Bits: 10, DropoutRate: 0.4, TargetReports: 5000, AutoAdjust: false, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := core.GeometricProbs(10, 1)
	res, err := co.RunRound(clients, feature, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Accepted > 3500 {
		t.Fatalf("without auto-adjust accepted %d, expected ~3000 (40%% dropout)", res.Stats.Accepted)
	}
}

func TestCentralRandomnessRejectsPoisoning(t *testing.T) {
	clients, truth := population(t, 5000, 12, 15)
	// 5% byzantine clients targeting the top bit.
	for i := 0; i < 250; i++ {
		clients = append(clients, &ByzantineClient{Name: "evil", TargetBit: 11})
	}
	co, err := NewCoordinator(Config{Bits: 12, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := core.GeometricProbs(12, 1)
	res, err := co.RunRound(clients, feature, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rejected == 0 {
		t.Fatal("no byzantine reports rejected under central randomness")
	}
	// Poisoning impact must stay modest.
	if bias := (res.Estimate - truth) / truth; bias > 0.25 {
		t.Fatalf("estimate %v inflated %v%% despite central randomness", res.Estimate, 100*bias)
	}
}

func TestLocalRandomnessVulnerableToPoisoning(t *testing.T) {
	clients, truth := population(t, 5000, 12, 17)
	for i := 0; i < 250; i++ {
		clients = append(clients, &ByzantineClient{Name: "evil", TargetBit: 11})
	}
	// Under central randomness an adversary only reaches the target bit
	// when the server assigns it (probability p_max); under local
	// randomness it reaches it every time. With γ=0.5 the top bit's
	// sampling probability is ~0.29, so the expected bias ratio is ~3.4x.
	mkBias := func(mode core.RandomnessMode, seed uint64) float64 {
		co, err := NewCoordinator(Config{Bits: 12, Randomness: mode, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		probs, _ := core.GeometricProbs(12, 0.5)
		res, err := co.RunRound(clients, feature, probs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Estimate - truth
	}
	var local, central float64
	for s := uint64(0); s < 5; s++ {
		local += mkBias(core.LocalRandomness, 100+s)
		central += mkBias(core.CentralRandomness, 200+s)
	}
	if local <= 2*math.Abs(central) {
		t.Fatalf("local-randomness poisoning bias %v not well above central %v", local/5, central/5)
	}
}

func TestLedgerMetersAndDenies(t *testing.T) {
	clients, _ := population(t, 100, 8, 18)
	ledger := meter.NewLedger(meter.Policy{MaxBitsPerValue: 1, MaxBitsPerFeature: 2})
	rr, _ := ldp.NewRandomizedResponse(1)
	co, err := NewCoordinator(Config{Bits: 8, RR: rr, Ledger: ledger, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := core.GeometricProbs(8, 1)
	// Two rounds exhaust the 2-bit per-feature budget; a third is denied.
	for i := 0; i < 2; i++ {
		res, err := co.RunRound(clients, feature, probs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Denied != 0 {
			t.Fatalf("round %d denied %d", i, res.Stats.Denied)
		}
	}
	res, err := co.RunRound(clients, feature, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Denied != 100 || res.Stats.Accepted != 0 {
		t.Fatalf("budget exhaustion: denied=%d accepted=%d", res.Stats.Denied, res.Stats.Accepted)
	}
	if got := ledger.BitsDisclosed("client-0", feature); got != 2 {
		t.Errorf("client-0 disclosed %d bits", got)
	}
	if got := ledger.EpsilonSpent("client-0"); math.Abs(got-2) > 1e-12 {
		t.Errorf("client-0 eps spent %v", got)
	}
}

func TestAbstainingClients(t *testing.T) {
	clients := []Client{
		&SimClient{Name: "a", Values: map[string][]uint64{feature: {5}}},
		&SimClient{Name: "b", Values: map[string][]uint64{"other": {5}}},
	}
	co, err := NewCoordinator(Config{Bits: 4, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := core.UniformProbs(4)
	res, err := co.RunRound(clients, feature, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Abstained != 1 || res.Stats.Accepted != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestDPFederatedEndToEnd(t *testing.T) {
	clients, truth := population(t, 30000, 12, 21)
	rr, _ := ldp.NewRandomizedResponse(2)
	co, err := NewCoordinator(Config{
		Bits: 12, RR: rr, SquashThreshold: 0.05, DropoutRate: 0.1, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.EstimateMean(clients, feature)
	if err != nil {
		t.Fatal(err)
	}
	if nrmse := math.Abs(res.Estimate-truth) / truth; nrmse > 0.15 {
		t.Fatalf("DP federated estimate %v vs truth %v (nrmse %v)", res.Estimate, truth, nrmse)
	}
}

func TestCoordinatorDeterministic(t *testing.T) {
	clients, _ := population(t, 2000, 10, 23)
	run := func() float64 {
		co, err := NewCoordinator(Config{Bits: 10, DropoutRate: 0.2, Seed: 24})
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.EstimateMean(clients, feature)
		if err != nil {
			t.Fatal(err)
		}
		return res.Estimate
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("coordinator not deterministic: %v vs %v", a, b)
	}
}

func TestEstimateMeanTooFewClients(t *testing.T) {
	co, err := NewCoordinator(Config{Bits: 8, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.EstimateMean([]Client{&SimClient{Name: "x"}}, feature); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v", err)
	}
}
