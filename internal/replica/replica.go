// Package replica implements the standby side of WAL-shipping
// replication: a Follower long-polls a primary's /v1/replication/wal
// endpoint, applies every shipped record into a warm local session
// table (mirroring the primary's exact sequence space into its own
// log), and tracks applied-sequence and lag. On promotion — manual via
// the admin endpoint or automatic when the primary's health probe fails
// repeatedly — it first drains the unshipped tail of the dead primary's
// log straight from disk (salvage), then flips the local server to
// primary under the next fencing epoch and best-effort fences whatever
// is left of the old one.
//
// The protocol is deliberately consensus-free: one primary, one or more
// standbys, and a fencing epoch that makes the loser of any race
// harmless rather than impossible. Operators (or the chaos soak) are
// responsible for not promoting two standbys at once; the epoch
// guarantees that even if they do, every client-visible ack names
// exactly one lineage.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Replica-side metric names; the server-side fednum_repl_* instruments
// live in internal/transport.
const (
	MetricAppliedSeq     = "fednum_replica_applied_seq"
	MetricHeadSeq        = "fednum_replica_head_seq"
	MetricLagRecords     = "fednum_replica_lag_records"
	MetricLagBytes       = "fednum_replica_lag_bytes"
	MetricLagSeconds     = "fednum_replica_lag_seconds"
	MetricPulls          = "fednum_replica_pulls_total"
	MetricPullErrors     = "fednum_replica_pull_errors_total"
	MetricBootstraps     = "fednum_replica_bootstraps_total"
	MetricSalvaged       = "fednum_replica_salvaged_records_total"
	MetricStaleEpochDrop = "fednum_replica_stale_epoch_drops_total"
)

// Options configures a Follower. Server and Primary are required.
type Options struct {
	// Server is the local standby (role RoleStandby, WAL attached).
	Server *transport.Server
	// Primary lists the endpoint(s) to replicate from. With several, the
	// follower pulls from whichever currently answers — useful when the
	// "primary" is itself a failover pair.
	Primary *transport.EndpointList
	// SelfURL is this node's advertised base URL, sent as the leader
	// hint when fencing the old primary after a promotion.
	SelfURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Logger defaults to slog.Default().
	Logger *slog.Logger
	// Registry, when non-nil, receives the fednum_replica_* instruments.
	Registry *obs.Registry
	// Tracer, when non-nil, records apply/salvage/promote spans.
	Tracer *trace.Recorder
	// WaitMS is the long-poll window the primary parks our pull on when
	// the log is quiet; default 2000, 0 forced to the default (a
	// replication loop without a wait would spin).
	WaitMS int
	// PollInterval is the pause after a failed pull; default 200ms.
	PollInterval time.Duration
	// MaxBatch and MaxBatchBytes bound one pull; defaults 1024 / 4MiB.
	MaxBatch      int
	MaxBatchBytes int64
	// SalvageDir, when set, is the primary's WAL directory as visible
	// from this host (shared volume or same machine). At promotion the
	// follower drains every record past its applied sequence from there,
	// so acks the primary sent but never shipped survive the failover.
	SalvageDir string
	// FailoverAfter enables automatic promotion after this many
	// consecutive primary health-probe failures; 0 disables the prober
	// (promotion is manual only).
	FailoverAfter int
	// ProbeInterval is the health-probe cadence; default 1s.
	ProbeInterval time.Duration
}

// Follower replicates a primary into a local standby server. Create
// with New, drive with Run, and wire Promote to the server's promote
// hook (transport.Server.SetOnPromote) so the admin verb and the
// automatic prober share one promotion path.
type Follower struct {
	opts Options
	hc   *http.Client
	log  *slog.Logger

	appliedSeq *obs.Gauge
	headSeq    *obs.Gauge
	lagRecords *obs.Gauge
	lagBytes   *obs.Gauge
	lagSeconds *obs.Gauge
	pulls      *obs.Counter
	pullErrs   *obs.Counter
	bootstraps *obs.Counter
	salvaged   *obs.Counter
	staleDrops *obs.Counter

	// appliedBytes mirrors the primary's SizeBytes counter, re-anchored
	// to the primary's exact value every time the follower fully catches
	// up, so lag-bytes stays meaningful across bootstraps and restarts.
	appliedBytes atomic.Int64
	// caughtUpAt is the last instant lag was zero (unix nanos), the base
	// of the lag-seconds gauge.
	caughtUpAt atomic.Int64

	promoteOnce sync.Once
	promoteErr  error
	promoted    atomic.Bool
	cancel      context.CancelFunc
}

// New validates opts and builds a Follower.
func New(opts Options) (*Follower, error) {
	if opts.Server == nil {
		return nil, errors.New("replica: Options.Server is required")
	}
	if opts.Primary == nil || opts.Primary.Len() == 0 {
		return nil, errors.New("replica: Options.Primary is required")
	}
	if opts.WaitMS <= 0 {
		opts.WaitMS = 2000
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 200 * time.Millisecond
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = time.Second
	}
	f := &Follower{opts: opts, hc: opts.HTTPClient, log: opts.Logger}
	if f.hc == nil {
		f.hc = http.DefaultClient
	}
	if f.log == nil {
		f.log = slog.Default()
	}
	if reg := opts.Registry; reg != nil {
		f.appliedSeq = reg.Gauge(MetricAppliedSeq, "Last WAL sequence applied to the standby session table.")
		f.headSeq = reg.Gauge(MetricHeadSeq, "Primary log head as of the last pull.")
		f.lagRecords = reg.Gauge(MetricLagRecords, "Records the standby is behind the primary head.")
		f.lagBytes = reg.Gauge(MetricLagBytes, "Log bytes the standby is behind the primary.")
		f.lagSeconds = reg.Gauge(MetricLagSeconds, "Seconds since the standby was last fully caught up.")
		f.pulls = reg.Counter(MetricPulls, "Replication pull requests issued.")
		f.pullErrs = reg.Counter(MetricPullErrors, "Replication pulls that failed (transport or protocol).")
		f.bootstraps = reg.Counter(MetricBootstraps, "Snapshot bootstraps performed.")
		f.salvaged = reg.Counter(MetricSalvaged, "Records drained from the dead primary's log at promotion.")
		f.staleDrops = reg.Counter(MetricStaleEpochDrop, "Pull batches dropped because the primary's epoch was stale (zombie primary).")
	}
	return f, nil
}

// Run drives the follower until ctx is cancelled or the node promotes:
// pull, verify epoch, apply, commit, update lag — forever. A transport
// failure backs off PollInterval and retries (the primary being briefly
// unreachable is the normal failover prelude, not an error); a
// compacted resume point triggers a snapshot bootstrap. With
// FailoverAfter > 0 a prober goroutine watches the primary's /healthz
// and calls Promote after enough consecutive failures.
func (f *Follower) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	f.cancel = cancel
	if f.opts.FailoverAfter > 0 {
		go f.probeLoop(ctx)
	}
	f.caughtUpAt.Store(time.Now().UnixNano())
	for {
		if ctx.Err() != nil || f.promoted.Load() {
			return nil
		}
		err := f.syncOnce(ctx)
		switch {
		case err == nil:
			continue
		case ctx.Err() != nil || f.promoted.Load():
			return nil
		case errors.Is(err, errCompacted):
			if berr := f.bootstrap(ctx); berr != nil {
				f.log.Error("replica: bootstrap failed", "error", berr)
				if !sleepCtx(ctx, f.opts.PollInterval) {
					return nil
				}
			}
		default:
			if f.pullErrs != nil {
				f.pullErrs.Inc()
			}
			f.log.Debug("replica: pull failed, backing off", "error", err)
			if !sleepCtx(ctx, f.opts.PollInterval) {
				return nil
			}
		}
	}
}

// errCompacted marks a 410 pull answer: the resume point is gone from
// the primary's log and the follower must re-bootstrap.
var errCompacted = errors.New("replica: resume point compacted away")

// errStaleEpoch marks a pull answered by a primary whose epoch is below
// ours — a zombie that has not yet learned it was deposed. Its records
// must not be applied.
var errStaleEpoch = errors.New("replica: primary epoch is stale")

// syncOnce issues one pull and applies what it returns.
func (f *Follower) syncOnce(ctx context.Context) error {
	srv := f.opts.Server
	from := srv.WALSeq() + 1
	base := f.opts.Primary.Current()
	q := url.Values{}
	q.Set("from", strconv.FormatUint(from, 10))
	q.Set("wait_ms", strconv.Itoa(f.opts.WaitMS))
	q.Set("epoch", strconv.FormatUint(srv.Epoch(), 10))
	if f.opts.MaxBatch > 0 {
		q.Set("max", strconv.Itoa(f.opts.MaxBatch))
	}
	if f.opts.MaxBatchBytes > 0 {
		q.Set("max_bytes", strconv.FormatInt(f.opts.MaxBatchBytes, 10))
	}
	if f.pulls != nil {
		f.pulls.Inc()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/replication/wal?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		f.opts.Primary.Advance(base)
		return err
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errCompacted
	case http.StatusMisdirectedRequest:
		// The node we pull from is itself a standby or was fenced; go ask
		// the next endpoint.
		f.opts.Primary.Advance(base)
		return fmt.Errorf("replica: %s is not a primary", base)
	default:
		return fmt.Errorf("replica: pull from %s: status %d", base, resp.StatusCode)
	}

	// Epoch discipline before a single byte is applied: a lower epoch is
	// a zombie primary (drop the batch), a higher one is news (adopt).
	primaryEpoch, err := strconv.ParseUint(resp.Header.Get(transport.ReplHeaderEpoch), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: pull answer carries no epoch header")
	}
	if ours := srv.Epoch(); primaryEpoch < ours {
		if f.staleDrops != nil {
			f.staleDrops.Inc()
		}
		f.opts.Primary.Advance(base)
		return fmt.Errorf("%w: primary %s at epoch %d, we know %d", errStaleEpoch, base, primaryEpoch, ours)
	}
	srv.SetEpoch(primaryEpoch)

	head, _ := strconv.ParseUint(resp.Header.Get(transport.ReplHeaderHeadSeq), 10, 64)
	primaryBytes, _ := strconv.ParseInt(resp.Header.Get(transport.ReplHeaderWALBytes), 10, 64)

	actx, sp := trace.Start(trace.WithRecorder(ctx, f.opts.Tracer), "replica.apply")
	defer sp.End()
	_ = actx
	applied := 0
	appliedBytes := int64(0)
	err = transport.DecodeReplFrames(resp.Body, func(seq uint64, payload []byte) error {
		if aerr := srv.ApplyReplicated(seq, payload); aerr != nil {
			return aerr
		}
		applied++
		// 8 bytes of on-disk framing per record, mirroring WAL.SizeBytes
		// accounting on the primary.
		appliedBytes += int64(len(payload)) + 8
		return nil
	})
	sp.AttrInt("applied", int64(applied))
	if applied > 0 {
		if cerr := srv.CommitReplicated(); cerr != nil {
			return cerr
		}
		f.appliedBytes.Add(appliedBytes)
	}
	if err != nil {
		return err
	}
	f.observeLag(head, primaryBytes)
	return nil
}

// observeLag refreshes the lag gauges against the primary's head as
// reported on the last pull.
func (f *Follower) observeLag(primaryHead uint64, primaryBytes int64) {
	applied := f.opts.Server.WALSeq()
	if applied >= primaryHead {
		// Fully caught up: re-anchor the byte counter to the primary's
		// authoritative value and reset the staleness clock.
		f.appliedBytes.Store(primaryBytes)
		f.caughtUpAt.Store(time.Now().UnixNano())
	}
	if f.appliedSeq == nil {
		return
	}
	f.appliedSeq.Set(float64(applied))
	f.headSeq.Set(float64(primaryHead))
	lagRec := float64(0)
	if primaryHead > applied {
		lagRec = float64(primaryHead - applied)
	}
	f.lagRecords.Set(lagRec)
	lagB := primaryBytes - f.appliedBytes.Load()
	if lagB < 0 {
		lagB = 0
	}
	f.lagBytes.Set(float64(lagB))
	f.lagSeconds.Set(time.Since(time.Unix(0, f.caughtUpAt.Load())).Seconds())
}

// bootstrap restores the primary's snapshot into an empty standby and
// aligns the local log at its coverage point.
func (f *Follower) bootstrap(ctx context.Context) error {
	base := f.opts.Primary.Current()
	_, sp := trace.Start(trace.WithRecorder(ctx, f.opts.Tracer), "replica.bootstrap")
	defer sp.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/replication/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		f.opts.Primary.Advance(base)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot from %s: status %d", base, resp.StatusCode)
	}
	var snap transport.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("replica: decoding snapshot: %w", err)
	}
	if err := f.opts.Server.BootstrapReplica(&snap); err != nil {
		return err
	}
	if f.bootstraps != nil {
		f.bootstraps.Inc()
	}
	sp.AttrInt("wal_seq", int64(snap.WALSeq))
	f.log.Info("replica: bootstrapped from snapshot", "primary", base, "wal_seq", snap.WALSeq)
	return nil
}

// probeLoop watches the primary's /healthz and promotes after
// FailoverAfter consecutive failures. A pull endpoint rotation (several
// primary URLs) resets nothing: the probe always follows the list's
// current endpoint, so it measures whoever we would replicate from.
func (f *Follower) probeLoop(ctx context.Context) {
	t := time.NewTicker(f.opts.ProbeInterval)
	defer t.Stop()
	failures := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if f.promoted.Load() {
			return
		}
		if f.probeOnce(ctx) {
			failures = 0
			continue
		}
		failures++
		if failures < f.opts.FailoverAfter {
			continue
		}
		f.log.Warn("replica: primary failed its health probe, promoting",
			"failures", failures, "primary", f.opts.Primary.Current())
		if err := f.Promote(ctx); err != nil {
			f.log.Error("replica: automatic promotion failed", "error", err)
			return
		}
		return
	}
}

// probeOnce reports whether the primary answered its liveness probe.
func (f *Follower) probeOnce(ctx context.Context) bool {
	pctx, cancel := context.WithTimeout(ctx, f.opts.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, f.opts.Primary.Current()+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Promote executes the takeover exactly once: stop following, drain the
// dead primary's unshipped log tail from disk (SalvageDir), flip the
// local server to primary under epoch+1, and best-effort fence the old
// primary. Safe to call from the admin endpoint (via SetOnPromote) and
// the prober concurrently; later calls return the first outcome.
func (f *Follower) Promote(ctx context.Context) error {
	f.promoteOnce.Do(func() { f.promoteErr = f.promote(ctx) })
	return f.promoteErr
}

func (f *Follower) promote(ctx context.Context) error {
	f.promoted.Store(true)
	if f.cancel != nil {
		f.cancel()
	}
	srv := f.opts.Server
	_, sp := trace.Start(trace.WithRecorder(ctx, f.opts.Tracer), "replica.promote")
	defer sp.End()

	// Salvage before the flip: every record the dead primary acked but
	// never shipped is on its disk, and a SIGKILL loses at worst a torn
	// tail frame that was never committed, hence never acked. After
	// this, our log is a superset of everything any client was told.
	if dir := f.opts.SalvageDir; dir != "" {
		from := srv.WALSeq() + 1
		salvaged := 0
		err := wal.ScanDir(dir, from, func(seq uint64, payload []byte) error {
			if aerr := srv.ApplyReplicated(seq, payload); aerr != nil {
				return aerr
			}
			salvaged++
			return nil
		})
		if err != nil && !errors.Is(err, wal.ErrCompacted) {
			return fmt.Errorf("replica: salvaging %s from seq %d: %w", dir, from, err)
		}
		// ErrCompacted here means the primary compacted past our applied
		// point and then died before we re-bootstrapped: its snapshot has
		// state we never saw, so taking over would drop acks. Refuse.
		if errors.Is(err, wal.ErrCompacted) {
			return fmt.Errorf("replica: cannot promote, primary log %s starts past our applied seq %d: %w",
				dir, srv.WALSeq(), err)
		}
		if salvaged > 0 {
			if cerr := srv.CommitReplicated(); cerr != nil {
				return cerr
			}
		}
		if f.salvaged != nil {
			f.salvaged.Add(uint64(salvaged))
		}
		sp.AttrInt("salvaged", int64(salvaged))
		f.log.Info("replica: salvaged dead primary's tail", "dir", dir, "records", salvaged)
	}

	epoch := srv.Epoch() + 1
	if err := srv.Promote(epoch); err != nil {
		return err
	}
	sp.AttrInt("epoch", int64(epoch))

	// Best-effort fence: tell whatever is left of the old primary that
	// it is deposed, so a paused-not-dead process stops acking the
	// moment it wakes instead of at its next pull.
	base := f.opts.Primary.Current()
	q := url.Values{}
	q.Set("epoch", strconv.FormatUint(epoch, 10))
	if f.opts.SelfURL != "" {
		q.Set("leader", f.opts.SelfURL)
	}
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(dctx, http.MethodPost, base+"/v1/replication/demote?"+q.Encode(), nil)
	if err == nil {
		if resp, derr := f.hc.Do(req); derr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
			resp.Body.Close()
		}
	}
	f.log.Info("replica: promoted to primary", "epoch", epoch, "old_primary", base)
	return nil
}

// Promoted reports whether this follower has taken over as primary.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// sleepCtx pauses for d, returning false when ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
