package replica

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/wal"
)

// node is one server with a WAL and an HTTP listener.
type node struct {
	srv *transport.Server
	w   *wal.WAL
	ts  *httptest.Server
	dir string
}

func newNode(t *testing.T, seed uint64) *node {
	t.Helper()
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	s := transport.NewServer(seed)
	s.AttachWAL(w)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return &node{srv: s, w: w, ts: ts, dir: dir}
}

func seedReports(t *testing.T, s *transport.Server, id string, start, n int) {
	t.Helper()
	ctx := context.Background()
	for i := start; i < start+n; i++ {
		client := "c" + strconv.Itoa(i)
		task, err := s.AssignTask(ctx, id, client)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitReport(ctx, id, wire.Report{ClientID: client, Bit: task.Bit, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func follower(t *testing.T, standby, primary *node, opts func(*Options)) (*Follower, context.CancelFunc, chan struct{}) {
	t.Helper()
	standby.srv.SetRole(transport.RoleStandby)
	o := Options{
		Server:       standby.srv,
		Primary:      transport.NewEndpointList(primary.ts.URL),
		SelfURL:      standby.ts.URL,
		Registry:     obs.NewRegistry(),
		WaitMS:       50,
		PollInterval: 10 * time.Millisecond,
		SalvageDir:   primary.dir,
	}
	if opts != nil {
		opts(&o)
	}
	f, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := f.Run(ctx); err != nil {
			t.Errorf("follower run: %v", err)
		}
	}()
	t.Cleanup(func() { cancel(); <-done })
	return f, cancel, done
}

// TestFollowerReplicatesSalvagesAndPromotes is the whole failover story
// in-process: live replication keeps the standby warm, the follower is
// stopped (network loss analog), the primary acks more traffic and
// dies, and promotion drains that unshipped tail from the dead
// primary's log so the promoted node's result counts every acked
// report.
func TestFollowerReplicatesSalvagesAndPromotes(t *testing.T) {
	primary := newNode(t, 1)
	standby := newNode(t, 2)

	ctx := context.Background()
	id, err := primary.srv.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	seedReports(t, primary.srv, id, 0, 3)

	f, cancel, done := follower(t, standby, primary, nil)
	waitFor(t, "standby catch-up", func() bool {
		return standby.srv.WALSeq() == primary.srv.WALSeq()
	})
	if standby.w.LastSeq() != primary.w.LastSeq() {
		t.Fatalf("standby log head %d, primary %d", standby.w.LastSeq(), primary.w.LastSeq())
	}

	// Cut replication, then ack more traffic the standby never sees.
	cancel()
	<-done
	seedReports(t, primary.srv, id, 3, 2)
	if standby.srv.WALSeq() == primary.srv.WALSeq() {
		t.Fatal("test needs an unshipped tail")
	}
	primary.ts.Close() // the primary "dies"

	if err := f.Promote(ctx); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if standby.srv.Role() != transport.RolePrimary {
		t.Fatalf("role after promote = %v", standby.srv.Role())
	}
	if got, want := standby.srv.Epoch(), uint64(2); got != want {
		t.Fatalf("epoch = %d, want %d", got, want)
	}
	if standby.srv.WALSeq() != primary.srv.WALSeq() {
		t.Fatalf("salvage missed records: standby %d, primary %d",
			standby.srv.WALSeq(), primary.srv.WALSeq())
	}
	res, err := standby.srv.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports != 5 {
		t.Fatalf("promoted node counts %d reports, 5 were acked", res.Reports)
	}
}

// TestFollowerBootstrapsAfterCompaction starts a follower against a
// primary whose early log was compacted away: the 410 answer must
// trigger a snapshot bootstrap, after which tailing resumes normally.
func TestFollowerBootstrapsAfterCompaction(t *testing.T) {
	primary := newNode(t, 1)
	ctx := context.Background()
	id, err := primary.srv.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	seedReports(t, primary.srv, id, 0, 3)
	if _, err := primary.srv.CompactWAL(filepath.Join(t.TempDir(), "snap.json")); err != nil {
		t.Fatal(err)
	}
	seedReports(t, primary.srv, id, 3, 2)

	standby := newNode(t, 2)
	follower(t, standby, primary, nil)
	waitFor(t, "bootstrap + catch-up", func() bool {
		return standby.srv.WALSeq() == primary.srv.WALSeq()
	})
	// Post-bootstrap traffic still ships record by record.
	seedReports(t, primary.srv, id, 5, 1)
	waitFor(t, "incremental after bootstrap", func() bool {
		return standby.srv.WALSeq() == primary.srv.WALSeq()
	})
}

// TestAutoPromoteOnProbeFailure kills the primary and lets the prober
// take over without any operator involvement.
func TestAutoPromoteOnProbeFailure(t *testing.T) {
	primary := newNode(t, 1)
	ctx := context.Background()
	id, err := primary.srv.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	seedReports(t, primary.srv, id, 0, 2)

	standby := newNode(t, 2)
	f, _, _ := follower(t, standby, primary, func(o *Options) {
		o.FailoverAfter = 2
		o.ProbeInterval = 20 * time.Millisecond
	})
	waitFor(t, "catch-up", func() bool {
		return standby.srv.WALSeq() == primary.srv.WALSeq()
	})
	primary.ts.Close()
	waitFor(t, "automatic promotion", f.Promoted)
	waitFor(t, "role flip", func() bool {
		return standby.srv.Role() == transport.RolePrimary
	})
	if standby.srv.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", standby.srv.Epoch())
	}
	if _, err := standby.srv.Finalize(ctx, id); err != nil {
		t.Errorf("finalize on auto-promoted node: %v", err)
	}
}

// TestFollowerFencesZombiePrimary gives the follower a higher epoch
// than the primary: the pull itself must fence the stale primary (the
// request carries our epoch) and no records from it may be applied.
func TestFollowerFencesZombiePrimary(t *testing.T) {
	primary := newNode(t, 1)
	ctx := context.Background()
	id, err := primary.srv.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	seedReports(t, primary.srv, id, 0, 2)

	standby := newNode(t, 2)
	standby.srv.SetEpoch(7) // this follower has seen a newer world
	follower(t, standby, primary, nil)
	waitFor(t, "primary fenced by pull epoch", func() bool {
		return primary.srv.Role() == transport.RoleFenced
	})
	if primary.srv.Epoch() != 7 {
		t.Errorf("fenced primary epoch = %d, want adopted 7", primary.srv.Epoch())
	}
	if standby.srv.WALSeq() != 0 {
		t.Errorf("follower applied %d records from a stale-epoch primary", standby.srv.WALSeq())
	}
}
