// Package shamir implements Shamir's t-of-n secret sharing over the prime
// field of package field. The secure-aggregation substrate uses it to let a
// server recover the masking seeds of clients that drop out mid-round
// (paper §3.3 / §4.3, robustness to intermittent connectivity).
package shamir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/field"
)

// Share is one point (X, Y) on the sharing polynomial. X is never zero;
// the secret is the polynomial's value at zero.
type Share struct {
	X field.Element
	Y field.Element
}

// Errors returned by Split and Reconstruct.
var (
	ErrThreshold = errors.New("shamir: invalid threshold")
	ErrTooFew    = errors.New("shamir: not enough shares")
	ErrDuplicate = errors.New("shamir: duplicate share X coordinate")
)

// Split shares secret into n shares such that any t of them reconstruct it
// and fewer than t reveal nothing. Shares are evaluated at X = 1..n.
// Requires 1 <= t <= n.
//
// rnd supplies the random polynomial coefficients; nil means
// crypto/rand.Reader. The hiding property holds only if the coefficients
// are unpredictable, so a deterministic rnd is sound only when its seed is
// itself a secret (fedlint/randsource enforces the no-PRNG rule here).
func Split(secret field.Element, t, n int, rnd io.Reader) ([]Share, error) {
	if t < 1 || t > n {
		return nil, fmt.Errorf("%w: t=%d n=%d", ErrThreshold, t, n)
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	// Random polynomial of degree t-1 with constant term = secret.
	coeffs := make([]field.Element, t)
	coeffs[0] = field.Reduce(secret)
	for i := 1; i < t; i++ {
		c, err := field.RandElement(rnd)
		if err != nil {
			return nil, fmt.Errorf("shamir: drawing coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := range shares {
		x := field.Element(i + 1)
		shares[i] = Share{X: x, Y: eval(coeffs, x)}
	}
	return shares, nil
}

// eval evaluates the polynomial with the given coefficients (constant term
// first) at x by Horner's rule.
func eval(coeffs []field.Element, x field.Element) field.Element {
	var y field.Element
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = field.Add(field.Mul(y, x), coeffs[i])
	}
	return y
}

// Reconstruct recovers the secret from at least t shares by Lagrange
// interpolation at zero. Extra shares beyond the first t are ignored.
func Reconstruct(shares []Share, t int) (field.Element, error) {
	if t < 1 {
		return 0, fmt.Errorf("%w: t=%d", ErrThreshold, t)
	}
	if len(shares) < t {
		return 0, fmt.Errorf("%w: have %d, need %d", ErrTooFew, len(shares), t)
	}
	pts := shares[:t]
	seen := make(map[field.Element]bool, t)
	for _, s := range pts {
		if seen[s.X] {
			return 0, fmt.Errorf("%w: x=%d", ErrDuplicate, s.X)
		}
		seen[s.X] = true
	}
	// secret = Σ_i y_i Π_{j≠i} x_j / (x_j - x_i)
	var secret field.Element
	for i, si := range pts {
		num, den := field.Element(1), field.Element(1)
		for j, sj := range pts {
			if i == j {
				continue
			}
			num = field.Mul(num, sj.X)
			den = field.Mul(den, field.Sub(sj.X, si.X))
		}
		secret = field.Add(secret, field.Mul(si.Y, field.Div(num, den)))
	}
	return secret, nil
}
