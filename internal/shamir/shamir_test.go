package shamir

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/frand"
)

func TestSplitReconstructRoundTrip(t *testing.T) {
	r := frand.New(1)
	for _, cfg := range []struct{ t, n int }{
		{1, 1}, {1, 5}, {2, 3}, {3, 5}, {5, 5}, {7, 10},
	} {
		secret := field.Reduce(r.Uint64())
		shares, err := Split(secret, cfg.t, cfg.n, nil)
		if err != nil {
			t.Fatalf("Split(t=%d,n=%d): %v", cfg.t, cfg.n, err)
		}
		if len(shares) != cfg.n {
			t.Fatalf("got %d shares, want %d", len(shares), cfg.n)
		}
		got, err := Reconstruct(shares, cfg.t)
		if err != nil {
			t.Fatalf("Reconstruct: %v", err)
		}
		if got != secret {
			t.Fatalf("t=%d n=%d: reconstructed %d, want %d", cfg.t, cfg.n, got, secret)
		}
	}
}

func TestReconstructFromAnySubset(t *testing.T) {
	secret := field.Element(123456789)
	shares, err := Split(secret, 3, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every 3-subset must reconstruct the secret.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			for k := j + 1; k < 6; k++ {
				sub := []Share{shares[i], shares[j], shares[k]}
				got, err := Reconstruct(sub, 3)
				if err != nil {
					t.Fatal(err)
				}
				if got != secret {
					t.Fatalf("subset (%d,%d,%d) gave %d, want %d", i, j, k, got, secret)
				}
			}
		}
	}
}

func TestExtraSharesIgnored(t *testing.T) {
	secret := field.Element(42)
	shares, _ := Split(secret, 2, 5, nil)
	got, err := Reconstruct(shares, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("got %d, want %d", got, secret)
	}
}

func TestTooFewShares(t *testing.T) {
	shares, _ := Split(7, 3, 5, nil)
	_, err := Reconstruct(shares[:2], 3)
	if !errors.Is(err, ErrTooFew) {
		t.Fatalf("err = %v, want ErrTooFew", err)
	}
}

func TestDuplicateShares(t *testing.T) {
	shares, _ := Split(7, 2, 3, nil)
	_, err := Reconstruct([]Share{shares[0], shares[0]}, 2)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestInvalidThreshold(t *testing.T) {
	if _, err := Split(1, 0, 3, nil); !errors.Is(err, ErrThreshold) {
		t.Errorf("Split t=0: err = %v", err)
	}
	if _, err := Split(1, 4, 3, nil); !errors.Is(err, ErrThreshold) {
		t.Errorf("Split t>n: err = %v", err)
	}
	if _, err := Reconstruct(nil, 0); !errors.Is(err, ErrThreshold) {
		t.Errorf("Reconstruct t=0: err = %v", err)
	}
}

func TestFewerThanTSharesRevealNothing(t *testing.T) {
	// With threshold t, any t-1 shares are consistent with every possible
	// secret: verify that two different secrets can produce identical
	// (t-1)-share openings under suitable polynomials, by checking that
	// share Y values for a fixed X are uniform-ish across random splits.
	secret := field.Element(999)
	seen := map[field.Element]bool{}
	for i := 0; i < 100; i++ {
		shares, _ := Split(secret, 2, 2, nil)
		seen[shares[0].Y] = true
	}
	if len(seen) < 95 {
		t.Fatalf("share Y values not re-randomized: only %d distinct in 100 splits", len(seen))
	}
}

func TestSecretAtZeroNotLeakedByShareX(t *testing.T) {
	shares, _ := Split(55, 3, 4, nil)
	for _, s := range shares {
		if s.X == 0 {
			t.Fatal("share evaluated at X=0 leaks the secret directly")
		}
	}
}

func TestWrongSharesGiveWrongSecret(t *testing.T) {
	secret := field.Element(1000)
	shares, _ := Split(secret, 2, 4, nil)
	// Corrupt one share.
	shares[1].Y = field.Add(shares[1].Y, 1)
	got, err := Reconstruct(shares[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if got == secret {
		t.Fatal("corrupted share still reconstructed the true secret")
	}
}

// seededReader is a deterministic byte stream (SplitMix64 output) standing
// in for an entropy source in reproducibility tests.
type seededReader struct{ s uint64 }

func (r *seededReader) Read(p []byte) (int, error) {
	for i := range p {
		r.s += 0x9e3779b97f4a7c15
		z := r.s
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		p[i] = byte(z)
	}
	return len(p), nil
}

func TestDeterministicWithSeededReader(t *testing.T) {
	a, _ := Split(77, 3, 5, &seededReader{s: 42})
	b, _ := Split(77, 3, 5, &seededReader{s: 42})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("share %d differs across identical seeds", i)
		}
	}
}
