package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel converts a -log-level flag value (debug, info, warn, error;
// case-insensitive) into a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a structured logger writing to w in the given format
// ("text" or "json") at the given minimum level — the backing for the
// daemons' -log-format and -log-level flags.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

type ctxKey int

const requestIDKey ctxKey = iota

// WithRequestID stamps a per-request identifier into the context; server
// middleware assigns one per inbound HTTP request so log lines from one
// exchange can be correlated.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the identifier stamped by WithRequestID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
