package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestObsRegistryConcurrency hammers shared instruments from many
// goroutines while scraping concurrently; run under -race this is the
// registry's thread-safety proof, and the final values must be exact.
func TestObsRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Re-fetch the instruments through the registry each time, the
			// way instrumented request paths do.
			for i := 0; i < perWorker; i++ {
				reg.CounterVec("test_requests_total", "requests", "route").With("/a").Inc()
				reg.Gauge("test_in_flight", "in flight").Add(1)
				reg.Gauge("test_in_flight", "in flight").Add(-1)
				reg.Histogram("test_latency_seconds", "latency", LatencyBuckets).Observe(float64(i%10) / 100)
			}
		}(w)
	}
	// Concurrent scrapes must not race with writers.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	if got := reg.CounterVec("test_requests_total", "", "route").With("/a").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("test_in_flight", "").Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	h := reg.Histogram("test_latency_seconds", "", LatencyBuckets)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// valueLineRe matches a Prometheus exposition sample line.
var valueLineRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (\+Inf|-Inf|NaN|-?[0-9.eE+-]+)$`)

// ValidateExposition asserts the text is structurally valid exposition
// format: every line is a HELP/TYPE comment or a sample, every sample
// belongs to a TYPE-declared family, and histogram buckets are cumulative.
func ValidateExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
		case valueLineRe.MatchString(line):
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suffix); ok && typed[cut] == "histogram" {
					base = cut
				}
			}
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q has no TYPE declaration", line)
			}
		default:
			t.Fatalf("invalid exposition line: %q", line)
		}
	}
}

func TestObsPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("fmt_requests_total", "Total requests.", "route", "code").With("/v1/x", "200").Add(3)
	reg.Gauge("fmt_temperature", "A gauge.").Set(-1.5)
	h := reg.Histogram("fmt_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	// Label values requiring escaping.
	reg.CounterVec("fmt_weird_total", "Escapes: \\ and\nnewline.", "v").With("a\"b\\c\nd").Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	ValidateExposition(t, text)

	for _, want := range []string{
		`fmt_requests_total{route="/v1/x",code="200"} 3`,
		"# TYPE fmt_requests_total counter",
		"# TYPE fmt_latency_seconds histogram",
		`fmt_latency_seconds_bucket{le="0.1"} 1`,
		`fmt_latency_seconds_bucket{le="1"} 2`,
		`fmt_latency_seconds_bucket{le="+Inf"} 3`,
		`fmt_latency_seconds_sum 5.55`,
		`fmt_latency_seconds_count 3`,
		`fmt_temperature -1.5`,
		`fmt_weird_total{v="a\"b\\c\nd"} 1`,
		`# HELP fmt_weird_total Escapes: \\ and\nnewline.`,
	} {
		if !strings.Contains(text, want+"\n") && !strings.HasSuffix(text, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, text)
		}
	}

	// The HTTP handler serves the same bytes with the right content type.
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q", ct)
	}
	if rr.Body.String() != text {
		t.Fatalf("handler body differs from WritePrometheus")
	}
}

func TestObsHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40, 50, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i % 60))
	}
	p50 := h.Quantile(0.5)
	if p50 < 20 || p50 > 40 {
		t.Fatalf("p50 = %v, want within a bucket of 30", p50)
	}
	if q := h.Quantile(1); q > 100 {
		t.Fatalf("p100 = %v beyond top bound", q)
	}
	var empty Histogram
	if q := (&empty).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// Overflow clamps to the top finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(5)
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("overflow quantile = %v, want 1", q)
	}
}

func TestObsGaugeAddParallel(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); math.Abs(v-4000) > 1e-9 {
		t.Fatalf("gauge = %v, want 4000", v)
	}
}

func TestObsMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_metric", "first")
	assertPanics(t, "kind mismatch", func() { reg.Gauge("dup_metric", "second") })
	reg.CounterVec("lab_metric", "", "a")
	assertPanics(t, "label mismatch", func() { reg.CounterVec("lab_metric", "", "b") })
	assertPanics(t, "arity mismatch", func() { reg.CounterVec("lab_metric", "", "a").With("x", "y") })
	assertPanics(t, "bad name", func() { reg.Counter("bad name", "") })
}

func assertPanics(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestObsExpvarPublish(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("expvar_hits_total", "").Add(7)
	reg.Publish("obs_test_registry")
	// Publishing twice (even another registry) must not panic; first wins.
	NewRegistry().Publish("obs_test_registry")

	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if m["expvar_hits_total"].(float64) != 7 {
		t.Fatalf("expvar map = %v", m)
	}
}

func TestObsLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("visible", "session", "s1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log output is not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "visible" || rec["session"] != "s1" {
		t.Fatalf("unexpected record %v", rec)
	}

	if _, err := NewLogger(io.Discard, "xml", slog.LevelInfo); err == nil {
		t.Fatal("expected error for unknown format")
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("expected error for unknown level")
	}
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, "warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
}
