package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestFloatCounterAccumulates(t *testing.T) {
	reg := NewRegistry()
	fc := reg.FloatCounter("busy_seconds_total", "cumulative busy seconds")
	fc.Add(1.5)
	fc.Add(0.25)
	if got := fc.Value(); got != 1.75 {
		t.Errorf("Value() = %v, want 1.75", got)
	}
	// Idempotent re-registration returns the same instrument.
	if again := reg.FloatCounter("busy_seconds_total", "ignored"); again.Value() != 1.75 {
		t.Error("re-registration did not return the existing float counter")
	}
}

func TestFloatCounterConcurrentAdd(t *testing.T) {
	var fc FloatCounter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				fc.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := fc.Value(); got != 4000 {
		t.Errorf("Value() = %v, want 4000", got)
	}
}

// TestFloatCounterExposition checks the float counter renders as a
// Prometheus counter and appears in the expvar map as a float.
func TestFloatCounterExposition(t *testing.T) {
	reg := NewRegistry()
	reg.FloatCounterVec("worker_busy_seconds_total", "busy time", "pool").With("exp").Add(2.5)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE worker_busy_seconds_total counter\n") {
		t.Errorf("exposition lacks counter TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `worker_busy_seconds_total{pool="exp"} 2.5`) {
		t.Errorf("exposition lacks sample line:\n%s", out)
	}
	vars := reg.ExpvarMap()
	if got, ok := vars[`worker_busy_seconds_total{pool="exp"}`].(float64); !ok || got != 2.5 {
		t.Errorf("expvar value = %v, want 2.5", vars[`worker_busy_seconds_total{pool="exp"}`])
	}
}
