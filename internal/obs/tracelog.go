package obs

import (
	"context"
	"log/slog"

	"repro/internal/trace"
)

// traceHandler is a slog.Handler wrapper that stamps the active trace
// identity — trace_id and span_id from internal/trace, plus the
// middleware's request_id — onto every record whose context carries one.
// Log lines emitted with the Context variants (InfoContext, DebugContext,
// ...) inside a traced request then spell the same hex ids that
// /debug/trace serves, so a span can be joined against its log lines.
type traceHandler struct {
	inner slog.Handler
}

// WithTraceContext wraps l so request-scoped log lines carry
// trace_id/span_id/request_id attributes taken from the call context.
// Records without an active span pass through untouched.
func WithTraceContext(l *slog.Logger) *slog.Logger {
	return slog.New(&traceHandler{inner: l.Handler()})
}

func (h *traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc, ok := trace.Active(ctx); ok {
		r.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	if id := RequestID(ctx); id != "" {
		r.AddAttrs(slog.String("request_id", id))
	}
	return h.inner.Handle(ctx, r)
}

func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *traceHandler) WithGroup(name string) slog.Handler {
	return &traceHandler{inner: h.inner.WithGroup(name)}
}
