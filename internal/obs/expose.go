package obs

import (
	"bytes"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// snapshotChild is one child frozen for rendering.
type snapshotChild struct {
	values []string
	value  float64  // counter (as float) or gauge
	count  uint64   // histogram
	sum    float64  // histogram
	bucket []uint64 // histogram: cumulative counts per finite bound
}

// snapshotFamily is one family frozen for rendering.
type snapshotFamily struct {
	name, help, kind string
	labels           []string
	bounds           []float64
	children         []snapshotChild
}

// snapshot freezes the registry under its locks in a render-ready form.
func (r *Registry) snapshot() []snapshotFamily {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]snapshotFamily, 0, len(fams))
	for _, f := range fams {
		sf := snapshotFamily{name: f.name, help: f.help, kind: f.kind, labels: f.labels, bounds: f.bounds}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := f.children[k]
			sc := snapshotChild{values: c.values}
			switch f.kind {
			case kindCounter:
				sc.value = float64(c.counter.Value())
			case kindFloatCounter:
				sc.value = c.fcounter.Value()
			case kindGauge:
				sc.value = c.gauge.Value()
			case kindHistogram:
				sc.count = c.hist.Count()
				sc.sum = c.hist.Sum()
				cum := uint64(0)
				sc.bucket = make([]uint64, len(c.hist.bounds))
				for i := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					sc.bucket[i] = cum
				}
			}
			sf.children = append(sf.children, sc)
		}
		f.mu.Unlock()
		out = append(out, sf)
	}
	return out
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; extra appends a trailing label (used
// for histogram le). An empty label set renders as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and children in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b bytes.Buffer
	for _, f := range r.snapshot() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, exportKind(f.kind))
		for _, c := range f.children {
			switch f.kind {
			case kindCounter, kindFloatCounter, kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, c.values, "", ""), formatValue(c.value))
			case kindHistogram:
				for i, bound := range f.bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, c.values, "le", formatValue(bound)), c.bucket[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.values, "le", "+Inf"), c.count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
					labelString(f.labels, c.values, "", ""), formatValue(c.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					labelString(f.labels, c.values, "", ""), c.count)
			}
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Handler serves the registry in Prometheus text format — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := r.WritePrometheus(w); err != nil {
			// The connection is gone; nothing useful to do.
			return
		}
	})
}

var publishMu sync.Mutex

// Publish exposes the registry under the given expvar name (visible at
// /debug/vars), as a flat map of "metric{labels}" to values; histograms
// render as {count, sum} objects. The expvar namespace is
// process-global and append-only, so the first registry published under a
// name wins and later calls are no-ops.
func (r *Registry) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.ExpvarMap() }))
}

// ExpvarMap returns the flat map view Publish exposes.
func (r *Registry) ExpvarMap() map[string]any {
	out := make(map[string]any)
	for _, f := range r.snapshot() {
		for _, c := range f.children {
			key := f.name + labelString(f.labels, c.values, "", "")
			switch f.kind {
			case kindCounter:
				out[key] = uint64(c.value)
			case kindFloatCounter, kindGauge:
				out[key] = c.value
			case kindHistogram:
				hist := map[string]any{"count": c.count, "sum": c.sum}
				out[key] = hist
			}
		}
	}
	return out
}
