package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestWithTraceContextStampsIDs(t *testing.T) {
	var buf bytes.Buffer
	base, err := NewLogger(&buf, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	log := WithTraceContext(base)

	rec := trace.NewRecorder(8)
	ctx := trace.WithRecorder(context.Background(), rec)
	ctx, sp := trace.Start(ctx, "op")
	ctx = WithRequestID(ctx, "req-7")
	log.InfoContext(ctx, "traced line")
	sp.End()

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	wantTrace := sp.Context().TraceID.String()
	wantSpan := sp.Context().SpanID.String()
	if line["trace_id"] != wantTrace || line["span_id"] != wantSpan {
		t.Fatalf("log line ids %v/%v, want %s/%s", line["trace_id"], line["span_id"], wantTrace, wantSpan)
	}
	if line["request_id"] != "req-7" {
		t.Fatalf("request_id = %v, want req-7", line["request_id"])
	}

	// The same spelling appears in the recorder's JSON view.
	spans := rec.Spans()
	if len(spans) != 1 || spans[0].TraceID != wantTrace {
		t.Fatalf("recorder sees %+v, want trace %s", spans, wantTrace)
	}
}

func TestWithTraceContextPassthrough(t *testing.T) {
	var buf bytes.Buffer
	base, err := NewLogger(&buf, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	log := WithTraceContext(base)
	log.Info("plain line")
	out := buf.String()
	if strings.Contains(out, "trace_id") || strings.Contains(out, "span_id") {
		t.Fatalf("untraced line grew trace attrs: %s", out)
	}

	// WithAttrs / WithGroup keep the wrapper in place.
	buf.Reset()
	rec := trace.NewRecorder(8)
	ctx := trace.WithRecorder(context.Background(), rec)
	ctx, sp := trace.Start(ctx, "op")
	defer sp.End()
	log.With("component", "x").WithGroup("g").InfoContext(ctx, "derived")
	if !strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("derived logger lost trace stamping: %s", buf.String())
	}
}
