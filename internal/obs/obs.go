// Package obs is the observability substrate for the aggregation stack:
// a zero-dependency, concurrency-safe metrics registry (atomic counters,
// gauges and fixed-bucket histograms, with labels) that exposes itself in
// Prometheus text format and through expvar, plus structured-logging
// helpers built on log/slog. The production federated-analytics systems
// the paper targets (§4.3) are operated by watching cohort sizes, dropout
// rates and privacy spend in real time; every component of this repository
// records into an obs.Registry so a daemon — or a simulation — can be read
// the same way.
//
// The registry is deliberately small: metric families are registered
// idempotently by name (re-registering returns the existing family, and a
// kind or label-schema mismatch panics, since that is a programming
// error), children are cached per label-value tuple, and every write path
// is either a single atomic operation or a short critical section, so
// instruments are safe to hammer from hundreds of goroutines.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
	// kindFloatCounter is a float-valued counter (e.g. cumulative busy
	// seconds). It renders as a Prometheus counter; the separate internal
	// kind keeps the instrument type distinct.
	kindFloatCounter = "floatcounter"
)

// exportKind maps an internal kind to its Prometheus exposition type.
func exportKind(kind string) string {
	if kind == kindFloatCounter {
		return kindCounter
	}
	return kind
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// LatencyBuckets is the default histogram layout for request latencies in
// seconds, spanning sub-millisecond local calls to multi-second retries.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CohortBuckets is the default histogram layout for cohort sizes
// (reports per finalized session).
var CohortBuckets = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric, for cumulative
// quantities that are not integers (busy seconds, bytes-seconds). Callers
// must only Add non-negative deltas.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates d (which must be >= 0).
func (c *FloatCounter) Add(d float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: cumulative-style buckets in
// the Prometheus sense (bucket i counts observations ≤ bounds[i], plus an
// implicit +Inf overflow bucket), an exact sum and an exact count.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	bs = slices.Compact(bs)
	for len(bs) > 0 && math.IsInf(bs[len(bs)-1], 1) {
		bs = bs[:len(bs)-1] // +Inf is implicit
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket the rank falls into — the same estimate a Prometheus
// histogram_quantile would produce. Samples in the +Inf overflow bucket
// clamp to the highest finite bound. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	lo := 0.0
	for i, hi := range h.bounds {
		n := float64(h.counts[i].Load())
		if cum+n >= rank {
			if n == 0 {
				return hi
			}
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
		lo = hi
	}
	if len(h.bounds) == 0 {
		return h.Sum() / float64(total)
	}
	return h.bounds[len(h.bounds)-1]
}

// child is one labelled instrument inside a family.
type child struct {
	values   []string
	counter  *Counter
	fcounter *FloatCounter
	gauge    *Gauge
	hist     *Histogram
}

// family is all the children sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bounds []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
}

const labelSep = "\x1f"

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s: %d label values for labels %v", f.name, len(values), f.labels))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindFloatCounter:
			c.fcounter = &FloatCounter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			c.hist = newHistogram(f.bounds)
		}
		f.children[key] = c
	}
	return c
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family registers or fetches a family; a kind or label-schema mismatch
// with an existing family panics. The first registration's help text and
// histogram buckets win.
func (r *Registry) family(name, help, kind string, bounds []float64, labels []string) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:     name,
			help:     help,
			kind:     kind,
			labels:   append([]string(nil), labels...),
			bounds:   append([]float64(nil), bounds...),
			children: make(map[string]*child),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, kind, f.kind))
	}
	if !slices.Equal(f.labels, labels) {
		panic(fmt.Sprintf("obs: metric %s re-registered with labels %v, was %v", name, labels, f.labels))
	}
	return f
}

// CounterVec registers (or fetches) a counter family with the given label
// names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, nil, labels)}
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// FloatCounterVec registers (or fetches) a float-counter family with the
// given label names.
func (r *Registry) FloatCounterVec(name, help string, labels ...string) *FloatCounterVec {
	return &FloatCounterVec{f: r.family(name, help, kindFloatCounter, nil, labels)}
}

// FloatCounter registers (or fetches) an unlabelled float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	return r.FloatCounterVec(name, help).With()
}

// GaugeVec registers (or fetches) a gauge family with the given label
// names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, nil, labels)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// HistogramVec registers (or fetches) a histogram family with the given
// bucket upper bounds and label names. The first registration's buckets
// win.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, buckets, labels)}
}

// Histogram registers (or fetches) an unlabelled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in registration
// order), creating it at zero on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).counter }

// FloatCounterVec is a labelled float-counter family.
type FloatCounterVec struct{ f *family }

// With returns the float counter for the given label values.
func (v *FloatCounterVec) With(values ...string) *FloatCounter { return v.f.child(values).fcounter }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).gauge }

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).hist }
