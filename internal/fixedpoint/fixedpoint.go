// Package fixedpoint converts real-valued client data to the b-bit integer
// and fixed-point representations that the bit-pushing protocols operate on.
//
// The paper (§3.1) works with b-bit integers and fixed-point values: each
// value is expanded in binary, individual binary digits are sampled, and the
// mean is reconstructed from per-bit means through the linear decomposition
// x = Σ_j 2^j · x^(j). This package provides the codec (quantization with
// clipping / winsorization, §4.3), signed offset encoding, and bit-level
// accessors used by the rest of the repository.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
)

// MaxBits is the largest supported bit depth. Values are held in uint64 and
// estimator weights 4^j must stay within float64's exact-integer range, so
// depths above 52 would silently lose precision in the variance analysis.
const MaxBits = 52

// ErrBitDepth reports a bit depth outside [1, MaxBits].
var ErrBitDepth = errors.New("fixedpoint: bit depth out of range")

// Codec maps real values to non-negative b-bit fixed-point integers and
// back. The zero Codec is not valid; use NewCodec.
type Codec struct {
	bits   int
	scale  float64 // multiplied in before rounding: integer = round(value*scale) - offsetInt
	offset float64 // subtracted from values before scaling (signed support)
	maxInt uint64  // 2^bits - 1
}

// NewCodec returns a codec quantizing values from [offset, offset + 2^bits/scale)
// into b-bit integers. scale must be positive and finite.
//
// With offset = 0 and scale = 1 the codec is the identity on integers in
// [0, 2^bits), matching the paper's integer setting. A fractional quantity
// in [0, 1) can use scale = 2^bits to get a fixed-point expansion.
func NewCodec(bits int, offset, scale float64) (*Codec, error) {
	if bits < 1 || bits > MaxBits {
		return nil, fmt.Errorf("%w: %d (want 1..%d)", ErrBitDepth, bits, MaxBits)
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("fixedpoint: scale must be positive and finite, got %v", scale)
	}
	return &Codec{
		bits:   bits,
		scale:  scale,
		offset: offset,
		maxInt: uint64(1)<<uint(bits) - 1,
	}, nil
}

// MustCodec is NewCodec that panics on error, for static configuration.
func MustCodec(bits int, offset, scale float64) *Codec {
	c, err := NewCodec(bits, offset, scale)
	if err != nil {
		panic(err)
	}
	return c
}

// Bits returns the configured bit depth b.
func (c *Codec) Bits() int { return c.bits }

// MaxValue returns the largest encodable integer, 2^b - 1.
func (c *Codec) MaxValue() uint64 { return c.maxInt }

// Encode quantizes a real value to its b-bit fixed-point representation,
// clipping to [0, 2^b-1]. Clipping implements the winsorization the paper
// deploys for heavy-tailed metrics (§4.3): "large values are truncated to
// 2^b − 1". NaN encodes to 0.
func (c *Codec) Encode(value float64) uint64 {
	v := (value - c.offset) * c.scale
	if math.IsNaN(v) || v <= 0 {
		return 0
	}
	r := math.Round(v)
	if r >= float64(c.maxInt) {
		return c.maxInt
	}
	return uint64(r)
}

// Clipped reports whether encoding value would clip at either end of the
// representable range.
func (c *Codec) Clipped(value float64) bool {
	v := (value - c.offset) * c.scale
	return v < 0 || math.Round(v) > float64(c.maxInt)
}

// Decode maps a b-bit integer back to the real value it represents
// (the centre of its quantization cell).
func (c *Codec) Decode(x uint64) float64 {
	return float64(x)/c.scale + c.offset
}

// DecodeMean maps an estimated mean in integer units back to real units.
// Unlike Decode it accepts fractional means (the output of bit-pushing).
func (c *Codec) DecodeMean(m float64) float64 {
	return m/c.scale + c.offset
}

// EncodeAll encodes a batch of values.
func (c *Codec) EncodeAll(values []float64) []uint64 {
	out := make([]uint64, len(values))
	for i, v := range values {
		out[i] = c.Encode(v)
	}
	return out
}

// Bit returns bit j (0 = least significant) of x. It panics if j is
// negative, a programmer error.
func Bit(x uint64, j int) uint64 {
	if j < 0 {
		panic("fixedpoint: negative bit index")
	}
	if j >= 64 {
		return 0
	}
	return (x >> uint(j)) & 1
}

// Bits decomposes x into its lowest b binary digits, least significant
// first, satisfying x mod 2^b == Σ_j 2^j · out[j].
func Bits(x uint64, b int) []uint64 {
	out := make([]uint64, b)
	for j := 0; j < b; j++ {
		out[j] = Bit(x, j)
	}
	return out
}

// FromBits reassembles an integer from its binary digits (least significant
// first), the linear decomposition of §3.1.
func FromBits(bits []uint64) uint64 {
	var x uint64
	for j, bit := range bits {
		if bit > 1 {
			panic("fixedpoint: FromBits digit out of {0,1}")
		}
		x |= bit << uint(j)
	}
	return x
}

// HighestBit returns the index of the highest set bit of x, or -1 for 0.
// The paper calls this b_max when applied to the data maximum (§3.2).
func HighestBit(x uint64) int {
	h := -1
	for x != 0 {
		h++
		x >>= 1
	}
	return h
}

// BitMeans returns, for each bit position j in [0, b), the fraction of
// values with bit j set: the ground-truth bit means x̄^(j) of Lemma 3.1.
func BitMeans(values []uint64, b int) []float64 {
	counts := make([]float64, b)
	for _, v := range values {
		for j := 0; j < b; j++ {
			counts[j] += float64((v >> uint(j)) & 1)
		}
	}
	if len(values) > 0 {
		n := float64(len(values))
		for j := range counts {
			counts[j] /= n
		}
	}
	return counts
}

// MeanFromBitMeans reconstructs the mean from per-bit means via the linear
// decomposition x̄ = Σ_j 2^j · x̄^(j) (equation (1) of the paper).
func MeanFromBitMeans(means []float64) float64 {
	var m float64
	for j, bm := range means {
		m += math.Ldexp(bm, j) // bm * 2^j
	}
	return m
}

// Mean returns the exact mean of encoded values, the ground truth the
// estimators are compared against.
func Mean(values []uint64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += float64(v)
	}
	return sum / float64(len(values))
}

// Variance returns the exact population variance of encoded values.
func Variance(values []uint64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := float64(v) - m
		ss += d * d
	}
	return ss / float64(len(values))
}
