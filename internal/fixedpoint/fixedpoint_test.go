package fixedpoint

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewCodecValidation(t *testing.T) {
	cases := []struct {
		bits          int
		offset, scale float64
		wantErr       bool
	}{
		{8, 0, 1, false},
		{1, 0, 1, false},
		{MaxBits, 0, 1, false},
		{0, 0, 1, true},
		{-1, 0, 1, true},
		{MaxBits + 1, 0, 1, true},
		{8, 0, 0, true},
		{8, 0, -2, true},
		{8, 0, math.Inf(1), true},
		{8, 0, math.NaN(), true},
	}
	for _, c := range cases {
		_, err := NewCodec(c.bits, c.offset, c.scale)
		if (err != nil) != c.wantErr {
			t.Errorf("NewCodec(%d,%v,%v) err = %v, wantErr %v", c.bits, c.offset, c.scale, err, c.wantErr)
		}
	}
}

func TestErrBitDepthWrapped(t *testing.T) {
	_, err := NewCodec(0, 0, 1)
	if !errors.Is(err, ErrBitDepth) {
		t.Fatalf("error %v does not wrap ErrBitDepth", err)
	}
}

func TestMustCodecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCodec(0,...) did not panic")
		}
	}()
	MustCodec(0, 0, 1)
}

func TestEncodeIdentityOnIntegers(t *testing.T) {
	c := MustCodec(10, 0, 1)
	for _, v := range []uint64{0, 1, 2, 511, 1022, 1023} {
		if got := c.Encode(float64(v)); got != v {
			t.Errorf("Encode(%d) = %d", v, got)
		}
	}
}

func TestEncodeClipping(t *testing.T) {
	c := MustCodec(8, 0, 1)
	if got := c.Encode(-5); got != 0 {
		t.Errorf("Encode(-5) = %d, want 0", got)
	}
	if got := c.Encode(300); got != 255 {
		t.Errorf("Encode(300) = %d, want 255", got)
	}
	if got := c.Encode(math.NaN()); got != 0 {
		t.Errorf("Encode(NaN) = %d, want 0", got)
	}
	if got := c.Encode(math.Inf(1)); got != 255 {
		t.Errorf("Encode(+Inf) = %d, want 255", got)
	}
}

func TestClipped(t *testing.T) {
	c := MustCodec(8, 0, 1)
	if c.Clipped(100) {
		t.Error("Clipped(100) = true for in-range value")
	}
	if !c.Clipped(-1) || !c.Clipped(256) {
		t.Error("Clipped missed out-of-range values")
	}
}

func TestOffsetScaleRoundTrip(t *testing.T) {
	// Signed values in [-100, 100) at resolution 200/1024.
	c := MustCodec(10, -100, 1024.0/200.0)
	for _, v := range []float64{-100, -50.3, 0, 0.2, 42, 99.8} {
		enc := c.Encode(v)
		dec := c.Decode(enc)
		if math.Abs(dec-v) > 200.0/1024.0 {
			t.Errorf("round trip %v -> %d -> %v beyond one quantization step", v, enc, dec)
		}
	}
}

func TestDecodeMeanFractional(t *testing.T) {
	c := MustCodec(8, 10, 2)
	// integer mean 37.5 corresponds to real 37.5/2 + 10 = 28.75
	if got := c.DecodeMean(37.5); math.Abs(got-28.75) > 1e-12 {
		t.Errorf("DecodeMean(37.5) = %v, want 28.75", got)
	}
}

func TestEncodeAll(t *testing.T) {
	c := MustCodec(4, 0, 1)
	got := c.EncodeAll([]float64{0, 1, 20, -3})
	want := []uint64{0, 1, 15, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("EncodeAll[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBit(t *testing.T) {
	x := uint64(0b1011010)
	wantBits := []uint64{0, 1, 0, 1, 1, 0, 1, 0}
	for j, w := range wantBits {
		if got := Bit(x, j); got != w {
			t.Errorf("Bit(%b, %d) = %d, want %d", x, j, got, w)
		}
	}
	if Bit(x, 64) != 0 || Bit(x, 100) != 0 {
		t.Error("Bit beyond word width should be 0")
	}
}

func TestBitPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit(x,-1) did not panic")
		}
	}()
	Bit(1, -1)
}

func TestBitsFromBitsRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		x &= (1 << 52) - 1
		return FromBits(Bits(x, 52)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBitsRejectsNonBinary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromBits with digit 2 did not panic")
		}
	}()
	FromBits([]uint64{0, 2})
}

func TestLinearDecomposition(t *testing.T) {
	// x = Σ 2^j x^(j): the core identity of §3.1.
	f := func(x uint32) bool {
		v := uint64(x)
		var sum uint64
		for j, bit := range Bits(v, 32) {
			sum += bit << uint(j)
		}
		return sum == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHighestBit(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, -1}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {255, 7}, {256, 8}, {1 << 51, 51},
	}
	for _, c := range cases {
		if got := HighestBit(c.x); got != c.want {
			t.Errorf("HighestBit(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBitMeansKnown(t *testing.T) {
	// values: 0b01, 0b11, 0b10, 0b00 -> bit0 mean 0.5, bit1 mean 0.5
	values := []uint64{1, 3, 2, 0}
	means := BitMeans(values, 2)
	if means[0] != 0.5 || means[1] != 0.5 {
		t.Fatalf("BitMeans = %v, want [0.5 0.5]", means)
	}
}

func TestBitMeansEmpty(t *testing.T) {
	means := BitMeans(nil, 4)
	for j, m := range means {
		if m != 0 {
			t.Errorf("BitMeans(nil)[%d] = %v", j, m)
		}
	}
}

func TestMeanFromBitMeansConsistency(t *testing.T) {
	// Exact mean must equal mean reconstructed from exact bit means
	// (linearity of expectation, equation (1)).
	values := []uint64{3, 9, 250, 17, 88, 1023, 512, 0}
	exact := Mean(values)
	recon := MeanFromBitMeans(BitMeans(values, 10))
	if math.Abs(exact-recon) > 1e-9 {
		t.Fatalf("mean %v != bit-mean reconstruction %v", exact, recon)
	}
}

func TestMeanFromBitMeansProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]uint64, len(raw))
		for i, v := range raw {
			values[i] = uint64(v)
		}
		exact := Mean(values)
		recon := MeanFromBitMeans(BitMeans(values, 16))
		return math.Abs(exact-recon) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanVariance(t *testing.T) {
	values := []uint64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(values); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(values); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
}

func TestMeanVarianceEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("Mean/Variance of empty slice should be 0")
	}
}

func TestEncodeScaleFixedPointFraction(t *testing.T) {
	// A value in [0,1) with scale 2^10 becomes a 10-bit fixed-point number.
	c := MustCodec(10, 0, 1024)
	enc := c.Encode(0.5)
	if enc != 512 {
		t.Fatalf("Encode(0.5) = %d, want 512", enc)
	}
	if got := c.Decode(enc); got != 0.5 {
		t.Fatalf("Decode(512) = %v, want 0.5", got)
	}
}
